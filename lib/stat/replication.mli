(** Confidence intervals over independent replications.

    The paper's simulator supports "one or more simulation experiments";
    classical output analysis turns those into interval estimates: run
    [n] replications with split random streams, read one scalar per run
    (a utilization, a throughput), and report mean, sample standard
    deviation and a Student-t confidence interval. *)

type estimate = {
  runs : int;
  mean : float;
  stddev : float;      (** sample standard deviation (n-1) *)
  half_width : float;  (** of the confidence interval *)
  confidence : float;  (** e.g. 0.95 *)
}

val of_samples : ?confidence:float -> float list -> estimate
(** [confidence] defaults to 0.95; supported levels are 0.90, 0.95 and
    0.99 (two-sided).  Raises [Invalid_argument] on fewer than two
    samples or an unsupported level. *)

val interval : estimate -> float * float
(** [mean -/+ half_width]. *)

val contains : estimate -> float -> bool
(** Is the value inside the confidence interval? *)

val replicate :
  ?seed:int ->
  ?confidence:float ->
  ?jobs:int ->
  runs:int ->
  until:float ->
  Pnut_core.Net.t ->
  (Stat.report -> float) -> estimate
(** [replicate ~runs ~until net read] simulates [runs] independent
    replications of [net] (split streams derived from [seed]) to the
    horizon, applies [read] to each statistics report, and aggregates.

    [jobs] (resolved by {!Pnut_exec.Pool.resolve}) distributes the runs
    over that many domains.  All random streams are split from the
    master before any run starts, so the estimate is bit-identical for
    every [jobs] value. *)

type partial_sweep = {
  pr_estimate : estimate option;
      (** present when at least two replications completed *)
  pr_samples : float list;  (** completed samples, in run order *)
  pr_completed : int;
  pr_requested : int;
}

val replicate_supervised :
  ?seed:int ->
  ?confidence:float ->
  ?jobs:int ->
  ?budget:Pnut_exec.Budget.t ->
  runs:int ->
  until:float ->
  Pnut_core.Net.t ->
  (Stat.report -> float) -> partial_sweep Pnut_exec.Supervisor.outcome
(** {!replicate} under a sweep-wide budget.  The wall limit is an
    absolute deadline shared by all runs; heap limits, event caps and
    cancellation apply per run.  Replications cut short by the budget
    are dropped from the sample set (a truncated horizon would bias the
    estimate); the rest aggregate as usual, and the sweep is reported
    [Degraded] with the first tripped reason in run order.  A sweep
    that completes within the budget returns [Complete] with an
    estimate identical to {!replicate}'s. *)

val pp : Format.formatter -> estimate -> unit
(** e.g. [0.6581 ± 0.0042 (95% CI, 10 runs)]. *)
