(** Confidence intervals over independent replications.

    The paper's simulator supports "one or more simulation experiments";
    classical output analysis turns those into interval estimates: run
    [n] replications with split random streams, read one scalar per run
    (a utilization, a throughput), and report mean, sample standard
    deviation and a Student-t confidence interval. *)

type estimate = {
  runs : int;
  mean : float;
  stddev : float;      (** sample standard deviation (n-1) *)
  half_width : float;  (** of the confidence interval *)
  confidence : float;  (** e.g. 0.95 *)
}

val of_samples : ?confidence:float -> float list -> estimate
(** [confidence] defaults to 0.95; supported levels are 0.90, 0.95 and
    0.99 (two-sided).  Raises [Invalid_argument] on fewer than two
    samples or an unsupported level. *)

val interval : estimate -> float * float
(** [mean -/+ half_width]. *)

val contains : estimate -> float -> bool
(** Is the value inside the confidence interval? *)

val replicate :
  ?seed:int ->
  ?confidence:float ->
  ?jobs:int ->
  runs:int ->
  until:float ->
  Pnut_core.Net.t ->
  (Stat.report -> float) -> estimate
(** [replicate ~runs ~until net read] simulates [runs] independent
    replications of [net] (split streams derived from [seed]) to the
    horizon, applies [read] to each statistics report, and aggregates.

    [jobs] (resolved by {!Pnut_exec.Pool.resolve}) distributes the runs
    over that many domains.  All random streams are split from the
    master before any run starts, so the estimate is bit-identical for
    every [jobs] value. *)

val pp : Format.formatter -> estimate -> unit
(** e.g. [0.6581 ± 0.0042 (95% CI, 10 runs)]. *)
