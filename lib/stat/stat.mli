(** The statistical analysis tool ([stat]).

    Extracts performance information from simulation traces, exactly in
    the paper's terms: everything is reported "in terms of places and
    transitions", and "the mapping between this information and
    higher-level concepts such as processor utilization is left up to the
    user" (Section 4.2).

    - For each {b place}: min/max/time-averaged token count with standard
      deviation.  With mutually-exclusive condition places (Bus_free /
      Bus_busy), the average token count of the busy place {e is} the
      resource utilization.
    - For each {b transition}: min/max/time-averaged number of concurrent
      firings with standard deviation, counts of started and finished
      firings, and throughput (firings finished / simulation time) — the
      paper's measure of processing rate.

    Averages are time-weighted over [initial clock, final clock].
    Transitions with zero firing time never accumulate busy time, so their
    average concurrency is 0 — the paper's Figure 5 shows exactly this for
    the instantaneous [Issue]/[Type_n] transitions. *)

type place_stats = {
  ps_name : string;
  ps_min : int;
  ps_max : int;
  ps_avg : float;
  ps_stddev : float;
  ps_final : int;  (** token count at the end of the run *)
}

type transition_stats = {
  ts_name : string;
  ts_min : int;           (** min concurrent firings *)
  ts_max : int;
  ts_avg : float;
  ts_stddev : float;
  ts_starts : int;
  ts_ends : int;
  ts_throughput : float;  (** ends / simulation length *)
}

type report = {
  run_number : int;
  initial_clock : float;
  length : float;          (** final clock - initial clock *)
  events_started : int;
  events_finished : int;
  places : place_stats array;
  transitions : transition_stats array;
}

type error =
  | Time_regression of { at : float; prev : float }
      (** A delta (or the end record) carried a timestamp earlier than the
          clock already reached.  Time-weighted averages are meaningless
          over such a trace, so it is rejected instead of silently
          mis-accounted. *)

exception Stat_error of error

val error_message : error -> string

val sink : ?run:int -> unit -> Pnut_trace.Trace.sink * (unit -> report)
(** Streaming accumulator; the getter raises [Invalid_argument] before
    [on_finish] has been seen.  The sink raises {!Stat_error} on a
    time-regressing trace. *)

val of_trace : ?run:int -> Pnut_trace.Trace.t -> report

val place : report -> string -> place_stats
(** Lookup by name; raises [Not_found]. *)

val transition : report -> string -> transition_stats
(** Lookup by name; raises [Not_found]. *)

val utilization : report -> string -> float
(** [utilization r p] is the average token count of place [p] — the bus /
    decoder / execution-unit utilization reading of Section 4.2. *)

val throughput : report -> string -> float
(** Transition throughput by name — e.g. the instruction processing rate
    is [throughput r "Issue"]. *)

val render : report -> string
(** The three Figure-5 tables (RUN STATISTICS, EVENT STATISTICS, PLACE
    STATISTICS) as aligned plain text. *)

val render_tsv : report -> string
(** Machine-readable: one line per place/transition, tab-separated. *)

val pp : Format.formatter -> report -> unit
