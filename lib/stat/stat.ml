module Trace = Pnut_trace.Trace

type place_stats = {
  ps_name : string;
  ps_min : int;
  ps_max : int;
  ps_avg : float;
  ps_stddev : float;
  ps_final : int;
}

type transition_stats = {
  ts_name : string;
  ts_min : int;
  ts_max : int;
  ts_avg : float;
  ts_stddev : float;
  ts_starts : int;
  ts_ends : int;
  ts_throughput : float;
}

type report = {
  run_number : int;
  initial_clock : float;
  length : float;
  events_started : int;
  events_finished : int;
  places : place_stats array;
  transitions : transition_stats array;
}

(* Time-weighted accumulator for an integer-valued step signal. *)
type signal = {
  mutable current : int;
  mutable min : int;
  mutable max : int;
  mutable weighted_sum : float;    (* integral of value dt *)
  mutable weighted_sq_sum : float; (* integral of value^2 dt *)
}

let signal_make v =
  { current = v; min = v; max = v; weighted_sum = 0.0; weighted_sq_sum = 0.0 }

let signal_accumulate s dt =
  if dt > 0.0 then begin
    let v = float_of_int s.current in
    s.weighted_sum <- s.weighted_sum +. (v *. dt);
    s.weighted_sq_sum <- s.weighted_sq_sum +. (v *. v *. dt)
  end

let signal_set s v =
  s.current <- v;
  if v < s.min then s.min <- v;
  if v > s.max then s.max <- v

let signal_stats s total =
  if total <= 0.0 then (0.0, 0.0)
  else begin
    let mean = s.weighted_sum /. total in
    let var = Float.max 0.0 ((s.weighted_sq_sum /. total) -. (mean *. mean)) in
    (mean, sqrt var)
  end

type error = Time_regression of { at : float; prev : float }

exception Stat_error of error

let error_message = function
  | Time_regression { at; prev } ->
    Printf.sprintf
      "stat: trace time went backwards (delta at %g after clock %g); traces \
       must be time-ordered"
      at prev

let () =
  Printexc.register_printer (function
    | Stat_error e -> Some (error_message e)
    | _ -> None)

type acc = {
  run : int;
  mutable header : Trace.header option;
  mutable t0 : float;
  mutable prev : float;
  mutable place_signals : signal array;
  mutable trans_signals : signal array;
  mutable starts : int array;
  mutable ends : int array;
  mutable final : float option;
}

let advance acc time =
  let dt = time -. acc.prev in
  if dt < 0.0 then
    raise (Stat_error (Time_regression { at = time; prev = acc.prev }))
  else if dt > 0.0 then begin
    Array.iter (fun s -> signal_accumulate s dt) acc.place_signals;
    Array.iter (fun s -> signal_accumulate s dt) acc.trans_signals;
    acc.prev <- time
  end

let on_header acc (h : Trace.header) =
  acc.header <- Some h;
  acc.place_signals <- Array.map signal_make h.Trace.h_initial;
  acc.trans_signals <-
    Array.map (fun _ -> signal_make 0) h.Trace.h_transitions;
  acc.starts <- Array.make (Array.length h.Trace.h_transitions) 0;
  acc.ends <- Array.make (Array.length h.Trace.h_transitions) 0

let on_delta acc (d : Trace.delta) =
  advance acc d.Trace.d_time;
  List.iter
    (fun (p, dm) ->
      let s = acc.place_signals.(p) in
      signal_set s (s.current + dm))
    d.Trace.d_marking;
  let ts = acc.trans_signals.(d.Trace.d_transition) in
  (match d.Trace.d_kind with
  | Trace.Fire_start ->
    acc.starts.(d.Trace.d_transition) <- acc.starts.(d.Trace.d_transition) + 1;
    signal_set ts (ts.current + 1)
  | Trace.Fire_end ->
    acc.ends.(d.Trace.d_transition) <- acc.ends.(d.Trace.d_transition) + 1;
    signal_set ts (ts.current - 1))

let on_finish acc time =
  advance acc time;
  acc.final <- Some time

let build acc =
  match acc.header, acc.final with
  | None, _ -> invalid_arg "Stat: no header received"
  | _, None -> invalid_arg "Stat: trace not finished"
  | Some h, Some final ->
    let length = final -. acc.t0 in
    let places =
      Array.mapi
        (fun i name ->
          let s = acc.place_signals.(i) in
          let avg, dev = signal_stats s length in
          {
            ps_name = name;
            ps_min = s.min;
            ps_max = s.max;
            ps_avg = avg;
            ps_stddev = dev;
            ps_final = s.current;
          })
        h.Trace.h_places
    in
    let transitions =
      Array.mapi
        (fun i name ->
          let s = acc.trans_signals.(i) in
          let avg, dev = signal_stats s length in
          {
            ts_name = name;
            ts_min = s.min;
            ts_max = s.max;
            ts_avg = avg;
            ts_stddev = dev;
            ts_starts = acc.starts.(i);
            ts_ends = acc.ends.(i);
            ts_throughput = (if length > 0.0 then float_of_int acc.ends.(i) /. length else 0.0);
          })
        h.Trace.h_transitions
    in
    {
      run_number = acc.run;
      initial_clock = acc.t0;
      length;
      events_started = Array.fold_left ( + ) 0 acc.starts;
      events_finished = Array.fold_left ( + ) 0 acc.ends;
      places;
      transitions;
    }

let sink ?(run = 1) () =
  let acc =
    {
      run;
      header = None;
      t0 = 0.0;
      prev = 0.0;
      place_signals = [||];
      trans_signals = [||];
      starts = [||];
      ends = [||];
      final = None;
    }
  in
  let s =
    {
      Trace.on_header = on_header acc;
      on_delta = on_delta acc;
      on_finish = on_finish acc;
    }
  in
  (s, fun () -> build acc)

let of_trace ?run tr =
  let s, get = sink ?run () in
  Trace.replay tr s;
  get ()

let place r name =
  match Array.find_opt (fun p -> p.ps_name = name) r.places with
  | Some p -> p
  | None -> raise Not_found

let transition r name =
  match Array.find_opt (fun t -> t.ts_name = name) r.transitions with
  | Some t -> t
  | None -> raise Not_found

let utilization r name = (place r name).ps_avg
let throughput r name = (transition r name).ts_throughput

(* -- rendering -- *)

let pad width s =
  if String.length s >= width then s
  else s ^ String.make (width - String.length s) ' '

let pad_left width s =
  if String.length s >= width then s
  else String.make (width - String.length s) ' ' ^ s

let table buf headers rows =
  let columns = List.length headers in
  let widths = Array.make columns 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure headers;
  List.iter measure rows;
  let emit is_header row =
    List.iteri
      (fun i cell ->
        let padded =
          if i = 0 || is_header then pad widths.(i) cell
          else pad_left widths.(i) cell
        in
        Buffer.add_string buf padded;
        if i < columns - 1 then Buffer.add_string buf "  ")
      row;
    Buffer.add_char buf '\n'
  in
  emit true headers;
  List.iter (emit false) rows

let fmt_g f = Printf.sprintf "%g" f

let fmt_avg f =
  if Float.equal f 0.0 then "0" else Printf.sprintf "%.4f" f

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "RUN STATISTICS\n";
  Buffer.add_string buf (Printf.sprintf "Run number           %d\n" r.run_number);
  Buffer.add_string buf
    (Printf.sprintf "Initial clock value  %s\n" (fmt_g r.initial_clock));
  Buffer.add_string buf
    (Printf.sprintf "Length of Simulation %s\n" (fmt_g r.length));
  Buffer.add_string buf
    (Printf.sprintf "Events started       %d\n" r.events_started);
  Buffer.add_string buf
    (Printf.sprintf "Events finished      %d\n" r.events_finished);
  Buffer.add_string buf "\nEVENT STATISTICS\n";
  Buffer.add_string buf (Printf.sprintf "Run number %d\n" r.run_number);
  table buf
    [ "Transition"; "Min/Max"; "Avg"; "Standard"; "Starts"; "Throughput" ]
    (Array.to_list r.transitions
    |> List.map (fun t ->
           [
             t.ts_name;
             Printf.sprintf "%d/%d" t.ts_min t.ts_max;
             fmt_avg t.ts_avg;
             fmt_avg t.ts_stddev;
             Printf.sprintf "%d/%d" t.ts_starts t.ts_ends;
             Printf.sprintf "%.4f" t.ts_throughput;
           ]));
  Buffer.add_string buf "\nPLACE STATISTICS\n";
  Buffer.add_string buf (Printf.sprintf "Run number %d\n" r.run_number);
  table buf
    [ "Place"; "Min/Max"; "Avg"; "Standard" ]
    (Array.to_list r.places
    |> List.map (fun p ->
           [
             p.ps_name;
             Printf.sprintf "%d/%d" p.ps_min p.ps_max;
             fmt_avg p.ps_avg;
             fmt_avg p.ps_stddev;
           ]));
  Buffer.contents buf

let render_tsv r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "run\t%d\tlength\t%g\tstarted\t%d\tfinished\t%d\n"
       r.run_number r.length r.events_started r.events_finished);
  Array.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "transition\t%s\t%d\t%d\t%.6f\t%.6f\t%d\t%d\t%.6f\n"
           t.ts_name t.ts_min t.ts_max t.ts_avg t.ts_stddev t.ts_starts
           t.ts_ends t.ts_throughput))
    r.transitions;
  Array.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "place\t%s\t%d\t%d\t%.6f\t%.6f\t%d\n" p.ps_name p.ps_min
           p.ps_max p.ps_avg p.ps_stddev p.ps_final))
    r.places;
  Buffer.contents buf

let pp ppf r = Format.pp_print_string ppf (render r)
