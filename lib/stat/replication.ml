type estimate = {
  runs : int;
  mean : float;
  stddev : float;
  half_width : float;
  confidence : float;
}

(* Two-sided Student-t critical values, df 1..30 then the normal limit. *)
let t_90 =
  [| 6.314; 2.920; 2.353; 2.132; 2.015; 1.943; 1.895; 1.860; 1.833; 1.812;
     1.796; 1.782; 1.771; 1.761; 1.753; 1.746; 1.740; 1.734; 1.729; 1.725;
     1.721; 1.717; 1.714; 1.711; 1.708; 1.706; 1.703; 1.701; 1.699; 1.697 |]

let t_95 =
  [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
     2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
     2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |]

let t_99 =
  [| 63.657; 9.925; 5.841; 4.604; 4.032; 3.707; 3.499; 3.355; 3.250; 3.169;
     3.106; 3.055; 3.012; 2.977; 2.947; 2.921; 2.898; 2.878; 2.861; 2.845;
     2.831; 2.819; 2.807; 2.797; 2.787; 2.779; 2.771; 2.763; 2.756; 2.750 |]

let critical confidence df =
  let table, limit =
    if Float.equal confidence 0.90 then (t_90, 1.645)
    else if Float.equal confidence 0.95 then (t_95, 1.960)
    else if Float.equal confidence 0.99 then (t_99, 2.576)
    else
      invalid_arg
        "Replication: supported confidence levels are 0.90, 0.95, 0.99"
  in
  if df >= 1 && df <= Array.length table then table.(df - 1) else limit

let of_samples ?(confidence = 0.95) samples =
  let n = List.length samples in
  if n < 2 then invalid_arg "Replication.of_samples: need at least two samples";
  let nf = float_of_int n in
  let mean = List.fold_left ( +. ) 0.0 samples /. nf in
  let ss =
    List.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 samples
  in
  let stddev = sqrt (ss /. (nf -. 1.0)) in
  let half_width = critical confidence (n - 1) *. stddev /. sqrt nf in
  { runs = n; mean; stddev; half_width; confidence }

let interval e = (e.mean -. e.half_width, e.mean +. e.half_width)

let contains e x =
  let lo, hi = interval e in
  x >= lo && x <= hi

let replicate ?(seed = 1) ?confidence ?jobs ~runs ~until net read =
  if runs < 2 then invalid_arg "Replication.replicate: need at least two runs";
  let master = Pnut_core.Prng.create seed in
  (* Split every stream up front, in run order: [Prng.split] mutates the
     master, so the streams — and hence the samples — are the same
     regardless of how the runs are later scheduled. *)
  let streams = Array.init runs (fun _ -> Pnut_core.Prng.split master) in
  let samples =
    Pnut_exec.Pool.init ?jobs runs (fun i ->
        let sink, get = Stat.sink () in
        let _ =
          Pnut_sim.Simulator.simulate ~prng:streams.(i) ~until ~sink net
        in
        read (get ()))
  in
  of_samples ?confidence (Array.to_list samples)

type partial_sweep = {
  pr_estimate : estimate option;
  pr_samples : float list;
  pr_completed : int;
  pr_requested : int;
}

module Budget = Pnut_exec.Budget
module Supervisor = Pnut_exec.Supervisor

let replicate_supervised ?(seed = 1) ?confidence ?jobs
    ?(budget = Budget.none) ~runs ~until net read =
  if runs < 2 then invalid_arg "Replication.replicate: need at least two runs";
  let monitor = Supervisor.start budget in
  let master = Pnut_core.Prng.create seed in
  let streams = Array.init runs (fun _ -> Pnut_core.Prng.split master) in
  (* The sweep-level wall budget is an absolute deadline: every run
     starts with the remaining wall time, so in-flight replications on
     all worker domains degrade at their next watchdog slot once the
     deadline passes. *)
  let run_budget () =
    if Budget.is_none budget then None
    else
      Some
        { budget with
          Budget.wall_s =
            (match budget.Budget.wall_s with
            | Some w -> Some (Float.max 1e-6 (w -. Supervisor.elapsed monitor))
            | None -> None);
          max_states = None }
  in
  let results =
    Pnut_exec.Pool.init ?jobs runs (fun i ->
        let sink, get = Stat.sink () in
        let st = Pnut_sim.Simulator.create ~prng:streams.(i) ~sink net in
        let outcome =
          Pnut_sim.Simulator.run ~until ?budget:(run_budget ()) st
        in
        match outcome.Pnut_sim.Simulator.stop with
        | Pnut_sim.Simulator.Budget_exhausted r -> Error r
        | _ -> Ok (read (get ())))
  in
  (* Completed samples keep their run-order position, so an estimate
     over them is bit-identical to a smaller unbudgeted sweep over the
     same prefix of streams. *)
  let samples =
    Array.to_list results
    |> List.filter_map (function Ok s -> Some s | Error _ -> None)
  in
  let completed = List.length samples in
  let estimate =
    if completed >= 2 then Some (of_samples ?confidence samples) else None
  in
  let partial =
    { pr_estimate = estimate; pr_samples = samples; pr_completed = completed;
      pr_requested = runs }
  in
  let first_trip =
    Array.to_list results
    |> List.find_map (function Error r -> Some r | Ok _ -> None)
  in
  match first_trip with
  | None -> Supervisor.Complete partial
  | Some reason ->
    Supervisor.Degraded
      {
        reason;
        partial;
        progress =
          Supervisor.snapshot monitor ~visited:completed
            ~frontier:(runs - completed);
      }

let pp ppf e =
  Format.fprintf ppf "%.4f ± %.4f (%.0f%% CI, %d runs)" e.mean e.half_width
    (100.0 *. e.confidence) e.runs
