(* Tests for untimed reachability graphs and their analyses. *)

module Net = Pnut_core.Net
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module B = Net.Builder
module Graph = Pnut_reach.Graph

(* The bus cycle: two states, reversible, live. *)
let bus_net () =
  let b = B.create "bus" in
  let free = B.add_place b "free" ~initial:1 in
  let busy = B.add_place b "busy" in
  let _ = B.add_transition b "grab" ~inputs:[ (free, 1) ] ~outputs:[ (busy, 1) ] in
  let _ = B.add_transition b "release" ~inputs:[ (busy, 1) ] ~outputs:[ (free, 1) ] in
  B.build b

(* A net that terminates: token moves a -> b -> c and stops. *)
let terminating_net () =
  let b = B.create "line" in
  let a = B.add_place b "a" ~initial:1 in
  let bb = B.add_place b "b" in
  let c = B.add_place b "c" in
  let _ = B.add_transition b "ab" ~inputs:[ (a, 1) ] ~outputs:[ (bb, 1) ] in
  let _ = B.add_transition b "bc" ~inputs:[ (bb, 1) ] ~outputs:[ (c, 1) ] in
  B.build b

let test_bus_graph_shape () =
  let g = Graph.build (bus_net ()) in
  Alcotest.(check int) "two states" 2 (Graph.num_states g);
  Alcotest.(check int) "two edges" 2 (Graph.num_edges g);
  Alcotest.(check bool) "complete" true (Graph.complete g);
  Alcotest.(check int) "initial is 0" 0 (Graph.initial g);
  Alcotest.(check (list int)) "no deadlocks" [] (Graph.deadlocks g);
  Alcotest.(check bool) "safe" true (Graph.is_safe g);
  Alcotest.(check bool) "reversible" true (Graph.is_reversible g);
  Alcotest.(check (list int)) "all transitions live" [ 0; 1 ]
    (Graph.live_transitions g);
  Alcotest.(check (list int)) "both home states" [ 0; 1 ] (Graph.home_states g)

let test_terminating_graph () =
  let g = Graph.build (terminating_net ()) in
  Alcotest.(check int) "three states" 3 (Graph.num_states g);
  Alcotest.(check (list int)) "final state deadlocked" [ 2 ] (Graph.deadlocks g);
  Alcotest.(check bool) "not reversible" false (Graph.is_reversible g);
  Alcotest.(check (list int)) "home state is the sink" [ 2 ] (Graph.home_states g)

let test_find_state_and_successors () =
  let net = bus_net () in
  let g = Graph.build net in
  (match Graph.find_state g [| 1; 0 |] with
  | Some 0 -> ()
  | other -> Alcotest.failf "expected state 0, got %s"
               (match other with None -> "none" | Some i -> string_of_int i));
  Alcotest.(check bool) "missing marking" true (Graph.find_state g [| 2; 2 |] = None);
  let succ = Graph.successors g 0 in
  Alcotest.(check int) "one successor" 1 (List.length succ);
  let e = List.hd succ in
  Alcotest.(check int) "via grab" (Net.transition_id net "grab") e.Graph.e_transition;
  Alcotest.(check int) "to state 1" 1 e.Graph.e_to;
  let pred = Graph.predecessors g 0 in
  Alcotest.(check int) "one predecessor" 1 (List.length pred)

let test_bounds () =
  let b = B.create "counterflow" in
  let p = B.add_place b "p" ~initial:3 in
  let q = B.add_place b "q" in
  let _ = B.add_transition b "move" ~inputs:[ (p, 1) ] ~outputs:[ (q, 2) ] in
  let net = B.build b in
  let g = Graph.build net in
  Alcotest.(check int) "p bound" 3 (Graph.bound g (Net.place_id net "p"));
  Alcotest.(check int) "q bound" 6 (Graph.bound g (Net.place_id net "q"));
  Alcotest.(check bool) "not safe" false (Graph.is_safe g)

let test_dead_transition_detected () =
  let b = B.create "deadtrans" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "starved" in
  let _ = B.add_transition b "live" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ] in
  let dead = B.add_transition b "never" ~inputs:[ (q, 1) ] in
  let net = B.build b in
  let g = Graph.build net in
  Alcotest.(check (list int)) "dead listed" [ dead ] (Graph.dead_transitions g)

let test_truncation () =
  (* unbounded net: must hit the cap and flag incompleteness *)
  let b = B.create "unbounded" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let _ =
    B.add_transition b "pump" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1); (q, 1) ]
  in
  let net = B.build b in
  let g = Graph.build ~max_states:10 net in
  Alcotest.(check bool) "truncated" false (Graph.complete g);
  Alcotest.(check bool) "capped" true (Graph.num_states g <= 10)

let test_inhibitor_in_reachability () =
  (* t is blocked while p holds 2 tokens; drain fires first *)
  let b = B.create "inhib" in
  let p = B.add_place b "p" ~initial:2 in
  let q = B.add_place b "q" in
  let _ = B.add_transition b "t" ~inhibitors:[ (p, 2) ] ~outputs:[ (q, 1) ]
  and _ = B.add_transition b "drain" ~inputs:[ (p, 2) ] in
  let net = B.build b in
  let g = Graph.build ~max_states:100 net in
  (* from [2,0]: only drain enabled -> [0,0]; then t pumps q unboundedly *)
  let initial_succ = Graph.successors g 0 in
  Alcotest.(check int) "only drain initially" 1 (List.length initial_succ);
  Alcotest.(check int) "drain edge" (Net.transition_id net "drain")
    (List.hd initial_succ).Graph.e_transition;
  Alcotest.(check bool) "then unbounded" false (Graph.complete g)

let test_interpreted_state_includes_env () =
  (* a counter variable distinguishes otherwise-identical markings *)
  let b = B.create "counter" ~variables:[ ("n", Value.Int 0) ] in
  let p = B.add_place b "p" ~initial:1 in
  let _ =
    B.add_transition b "bump" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ]
      ~predicate:Expr.(var "n" < int 3)
      ~action:[ Expr.Assign ("n", Expr.(var "n" + int 1)) ]
  in
  let net = B.build b in
  let g = Graph.build net in
  (* states n=0..3 share the same marking but differ in env *)
  Alcotest.(check int) "four states" 4 (Graph.num_states g);
  Alcotest.(check (list int)) "terminates at n=3" [ 3 ] (Graph.deadlocks g);
  let final = Graph.state g 3 in
  Alcotest.(check bool) "env recorded" true
    (List.assoc "n" final.Graph.s_env = Value.Int 3)

let test_stochastic_action_rejected () =
  let b = B.create "rand" ~variables:[ ("x", Value.Int 0) ] in
  let p = B.add_place b "p" ~initial:1 in
  let _ =
    B.add_transition b "roll" ~inputs:[ (p, 1) ]
      ~action:[ Expr.Assign ("x", Expr.irand (Expr.int 0) (Expr.int 9)) ]
  in
  let net = B.build b in
  Alcotest.check_raises "irand rejected"
    (Invalid_argument
       "Reach.Graph.build: stochastic predicate/action on transitions: roll")
    (fun () -> ignore (Graph.build net))

let test_state_key_no_aliasing () =
  (* Adversarial variable names: after t1 the env is {a=1, b=2}, after
     t2 it is {"a=1;b"=2}.  Both render as the snapshot string
     "a=1;b=2;", so the old string-keyed explorer merged the two
     branches into one state; structural keys must keep them apart. *)
  let module Env = Pnut_core.Env in
  let e1 = Env.create () in
  Env.set e1 "a" (Value.Int 1);
  Env.set e1 "b" (Value.Int 2);
  let e2 = Env.create () in
  Env.set e2 "a=1;b" (Value.Int 2);
  Alcotest.(check string) "snapshots do collide" (Env.snapshot e1)
    (Env.snapshot e2);
  Alcotest.(check bool) "but envs are distinct" false (Env.equal e1 e2);
  let b = B.create "alias" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let _ =
    B.add_transition b "t1" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ]
      ~action:[ Expr.Assign ("a", Expr.int 1); Expr.Assign ("b", Expr.int 2) ]
  in
  let _ =
    B.add_transition b "t2" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ]
      ~action:[ Expr.Assign ("a=1;b", Expr.int 2) ]
  in
  let g = Graph.build (B.build b) in
  Alcotest.(check int) "both branches kept" 3 (Graph.num_states g);
  Alcotest.(check (list int)) "two distinct deadlocks" [ 1; 2 ]
    (Graph.deadlocks g)

let test_truncation_boundary () =
  (* At the cap, edges to fresh states are dropped (and the graph is
     flagged incomplete) but edges into already-interned states are
     still recorded. *)
  let b = B.create "capped" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let _ =
    B.add_transition b "pump" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1); (q, 1) ]
  in
  let _ = B.add_transition b "noop" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ] in
  let net = B.build b in
  let g = Graph.build ~max_states:10 net in
  Alcotest.(check bool) "incomplete" false (Graph.complete g);
  Alcotest.(check int) "exactly at the cap" 10 (Graph.num_states g);
  (* pump edges i -> i+1 for i < 9 (the one leaving state 9 is dropped),
     plus a noop self-loop on every state, including the last *)
  Alcotest.(check int) "edges at the boundary" 19 (Graph.num_edges g);
  let last = Graph.successors g 9 in
  Alcotest.(check int) "self-loop kept at the cap" 1 (List.length last);
  Alcotest.(check int) "to itself" 9 (List.hd last).Graph.e_to

let test_check_invariant () =
  let g = Graph.build (bus_net ()) in
  Alcotest.(check (option int)) "one-hot invariant" None
    (Graph.check_invariant g (fun s ->
         s.Graph.s_marking.(0) + s.Graph.s_marking.(1) = 1));
  Alcotest.(check (option int)) "violated predicate found" (Some 1)
    (Graph.check_invariant g (fun s -> s.Graph.s_marking.(0) = 1))

let test_pipeline_graph () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let g = Graph.build ~max_states:20000 net in
  Alcotest.(check bool) "complete" true (Graph.complete g);
  Alcotest.(check (list int)) "deadlock-free" [] (Graph.deadlocks g);
  Alcotest.(check bool) "reversible (pipeline can drain)" true
    (Graph.is_reversible g);
  Alcotest.(check int) "all transitions live"
    (Net.num_transitions net)
    (List.length (Graph.live_transitions g));
  (* the buffer bound is respected in every reachable state *)
  Alcotest.(check int) "buffer bounded by 6" 6
    (Graph.bound g (Net.place_id net "Full_I_buffers"))

let test_summary_rendering () =
  let g = Graph.build (terminating_net ()) in
  let text = Format.asprintf "%a" Graph.pp_summary g in
  Testutil.check_contains "summary" text "states: 3";
  Testutil.check_contains "summary" text "deadlocks: 1"

(* property: BFS construction is deterministic *)
let prop_deterministic_build =
  QCheck2.Test.make ~name:"graph construction deterministic" ~count:20
    QCheck2.Gen.(int_range 1 5)
    (fun tokens ->
      let make () =
        let b = B.create "det" in
        let p = B.add_place b "p" ~initial:tokens in
        let q = B.add_place b "q" in
        let _ = B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ] in
        let _ = B.add_transition b "u" ~inputs:[ (q, 2) ] ~outputs:[ (p, 1) ] in
        B.build b
      in
      let g1 = Graph.build (make ()) in
      let g2 = Graph.build (make ()) in
      Graph.num_states g1 = Graph.num_states g2
      && List.for_all2
           (fun (e1 : Graph.edge) e2 -> e1 = e2)
           (Graph.edges g1) (Graph.edges g2))

let () =
  Alcotest.run "reach"
    [
      ( "construction",
        [
          Alcotest.test_case "bus cycle" `Quick test_bus_graph_shape;
          Alcotest.test_case "terminating" `Quick test_terminating_graph;
          Alcotest.test_case "lookup and edges" `Quick test_find_state_and_successors;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "dead transitions" `Quick test_dead_transition_detected;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "inhibitors" `Quick test_inhibitor_in_reachability;
          Alcotest.test_case "interpreted env state" `Quick
            test_interpreted_state_includes_env;
          Alcotest.test_case "stochastic rejected" `Quick
            test_stochastic_action_rejected;
          Alcotest.test_case "no state-key aliasing" `Quick
            test_state_key_no_aliasing;
          Alcotest.test_case "truncation boundary" `Quick
            test_truncation_boundary;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "check invariant" `Quick test_check_invariant;
          Alcotest.test_case "pipeline graph" `Slow test_pipeline_graph;
          Alcotest.test_case "summary" `Quick test_summary_rendering;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_deterministic_build ]);
    ]
