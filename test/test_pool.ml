(* Tests for the deterministic worker pool. *)

module Pool = Pnut_exec.Pool

let test_resolve () =
  Alcotest.(check int) "explicit count" 3 (Pool.resolve ~jobs:3 ());
  Alcotest.(check bool) "auto is at least 1" true (Pool.resolve ~jobs:0 () >= 1);
  Alcotest.(check int) "capped at 64" 64 (Pool.resolve ~jobs:1000 ());
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Pool: jobs must be >= 0, got -2") (fun () ->
      ignore (Pool.resolve ~jobs:(-2) ()))

let test_init_matches_serial () =
  let f i = (i * i) + 1 in
  let expected = Array.init 100 f in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.init ~jobs 100 f))
    [ 1; 2; 4; 7 ]

let test_init_edges () =
  Alcotest.(check (array int)) "empty" [||] (Pool.init ~jobs:4 0 (fun i -> i));
  Alcotest.(check (array int)) "single" [| 0 |]
    (Pool.init ~jobs:4 1 (fun i -> i));
  Alcotest.check_raises "negative size"
    (Invalid_argument "Pool.init: negative size") (fun () ->
      ignore (Pool.init ~jobs:1 (-1) (fun i -> i)))

let test_map_list () =
  let l = List.init 37 (fun i -> i) in
  Alcotest.(check (list int))
    "order preserved"
    (List.map (fun x -> x * 2) l)
    (Pool.map_list ~jobs:3 (fun x -> x * 2) l)

let test_lowest_index_error () =
  (* several tasks fail; the exception of the lowest-numbered one must
     surface, whatever worker hit it first *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d" jobs)
        (Failure "task 5")
        (fun () ->
          ignore
            (Pool.init ~jobs 32 (fun i ->
                 if i >= 5 && i mod 3 = 2 then
                   failwith (Printf.sprintf "task %d" i);
                 i))))
    [ 1; 2; 4 ]

let test_workers_really_cover_all_tasks () =
  (* a non-trivial fold over the results catches any dropped stripe *)
  let n = 1000 in
  let sum =
    Array.fold_left ( + ) 0 (Pool.init ~jobs:4 n (fun i -> i))
  in
  Alcotest.(check int) "sum 0..999" (n * (n - 1) / 2) sum

let cores () = max 1 (Domain.recommended_domain_count ())

let with_env name value f =
  let old = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () ->
      (* the empty string parses as unset on the PNUT_JOBS path *)
      Unix.putenv name (Option.value old ~default:""))
    f

let test_env_jobs_clamped () =
  (* PNUT_JOBS is auto-detection on both resolution paths, so a value
     above the core count must be clamped on both — only an explicit
     ?jobs override may oversubscribe *)
  with_env "PNUT_JOBS" "64" (fun () ->
      let c = cores () in
      Alcotest.(check int) "default (None) clamps the env value"
        (min 64 c) (Pool.resolve ());
      Alcotest.(check int) "auto (Some 0) clamps the env value"
        (min 64 c) (Pool.resolve ~jobs:0 ());
      Alcotest.(check int) "explicit override is honoured" 64
        (Pool.resolve ~jobs:64 ()))

let test_oversubscription_latch () =
  let c = cores () in
  if c + 5 > 64 then
    (* the 64-worker cap would mask oversubscription on this machine *)
    Alcotest.(check bool) "skipped: too many cores to oversubscribe" true true
  else begin
    let warnings = ref [] in
    Pool.set_warning_printer (fun m -> warnings := m :: !warnings);
    Fun.protect
      ~finally:(fun () ->
        Pool.set_warning_printer (fun m -> Printf.eprintf "%s\n%!" m);
        Pool.reset_oversubscription_latch ())
      (fun () ->
        Pool.reset_oversubscription_latch ();
        ignore (Pool.resolve ~jobs:(c + 2) () : int);
        Alcotest.(check int) "first oversubscribed resolve warns" 1
          (List.length !warnings);
        ignore (Pool.resolve ~jobs:(c + 2) () : int);
        ignore (Pool.resolve ~jobs:(c + 1) () : int);
        Alcotest.(check int) "repeating or shrinking stays quiet" 1
          (List.length !warnings);
        ignore (Pool.resolve ~jobs:(c + 5) () : int);
        Alcotest.(check int) "a larger request warns again" 2
          (List.length !warnings))
  end

let test_team_persistent_domains () =
  if Pool.team_size ~jobs:3 () < 3 then
    Alcotest.(check bool) "skipped: could not spawn a team of 3" true true
  else begin
    let ids1 = Array.make 3 (-1) and ids2 = Array.make 3 (-1) in
    let ran1 = Pool.run_team 3 (fun m -> ids1.(m) <- (Domain.self () :> int)) in
    let ran2 = Pool.run_team 3 (fun m -> ids2.(m) <- (Domain.self () :> int)) in
    Alcotest.(check bool) "both teams ran" true (ran1 && ran2);
    Alcotest.(check int) "three distinct domains" 3
      (List.length (List.sort_uniq compare (Array.to_list ids1)));
    (* the pool is persistent: the second team runs on the same spawned
       domains as the first (member 0 is the caller both times) *)
    Alcotest.(check (array int)) "same domains reused across calls" ids1 ids2
  end

let test_team_co_scheduled () =
  (* members busy-wait on each other: this only terminates if all four
     run on their own domain simultaneously *)
  if Pool.team_size ~jobs:4 () < 4 then
    Alcotest.(check bool) "skipped: could not spawn a team of 4" true true
  else begin
    let flags = Array.init 4 (fun _ -> Atomic.make false) in
    let ok =
      Pool.run_team 4 (fun m ->
          Atomic.set flags.(m) true;
          Array.iter
            (fun f ->
              let spins = ref 0 in
              while not (Atomic.get f) do
                incr spins;
                Pool.relax !spins
              done)
            flags)
    in
    Alcotest.(check bool) "full barrier completed" true ok
  end

let test_team_refused_while_pool_busy () =
  (* a team request from inside a running batch must refuse (returning
     false) rather than corrupt the batch in flight *)
  if Pool.team_size ~jobs:2 () < 2 then
    Alcotest.(check bool) "skipped: could not spawn a worker" true true
  else begin
    let results =
      Pool.init ~jobs:2 2 (fun _ -> Pool.run_team 2 (fun _ -> ()))
    in
    Alcotest.(check (array bool))
      "nested run_team refused on both tasks" [| false; false |] results
  end

let test_quiesce_respawns () =
  if Pool.team_size ~jobs:2 () < 2 then
    Alcotest.(check bool) "skipped: could not spawn a worker" true true
  else begin
    let id1 = ref (-1) and id2 = ref (-1) in
    let ran1 =
      Pool.run_team 2 (fun m -> if m = 1 then id1 := (Domain.self () :> int))
    in
    Pool.quiesce ();
    (* the next team call respawns the pool transparently *)
    let ran2 =
      Pool.run_team 2 (fun m -> if m = 1 then id2 := (Domain.self () :> int))
    in
    Alcotest.(check bool) "both teams ran" true (ran1 && ran2);
    (* domain ids are never reused within a process, so a retired
       worker's replacement is observably a fresh domain *)
    Alcotest.(check bool) "fresh worker domain after quiesce" true
      (!id1 >= 0 && !id2 >= 0 && !id1 <> !id2);
    Pool.quiesce ();
    (* quiescing an already-empty pool is a no-op *)
    Pool.quiesce ()
  end

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "resolve" `Quick test_resolve;
          Alcotest.test_case "init matches serial" `Quick
            test_init_matches_serial;
          Alcotest.test_case "edge cases" `Quick test_init_edges;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "lowest-index error wins" `Quick
            test_lowest_index_error;
          Alcotest.test_case "full coverage" `Quick
            test_workers_really_cover_all_tasks;
          Alcotest.test_case "PNUT_JOBS clamped to cores" `Quick
            test_env_jobs_clamped;
          Alcotest.test_case "oversubscription latch per count" `Quick
            test_oversubscription_latch;
        ] );
      ( "team",
        [
          Alcotest.test_case "persistent domains reused" `Quick
            test_team_persistent_domains;
          Alcotest.test_case "members co-scheduled" `Quick
            test_team_co_scheduled;
          Alcotest.test_case "refused while pool busy" `Quick
            test_team_refused_while_pool_busy;
          Alcotest.test_case "quiesce retires and respawns" `Quick
            test_quiesce_respawns;
        ] );
    ]
