(* Tests for the deterministic worker pool. *)

module Pool = Pnut_exec.Pool

let test_resolve () =
  Alcotest.(check int) "explicit count" 3 (Pool.resolve ~jobs:3 ());
  Alcotest.(check bool) "auto is at least 1" true (Pool.resolve ~jobs:0 () >= 1);
  Alcotest.(check int) "capped at 64" 64 (Pool.resolve ~jobs:1000 ());
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Pool: jobs must be >= 0, got -2") (fun () ->
      ignore (Pool.resolve ~jobs:(-2) ()))

let test_init_matches_serial () =
  let f i = (i * i) + 1 in
  let expected = Array.init 100 f in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.init ~jobs 100 f))
    [ 1; 2; 4; 7 ]

let test_init_edges () =
  Alcotest.(check (array int)) "empty" [||] (Pool.init ~jobs:4 0 (fun i -> i));
  Alcotest.(check (array int)) "single" [| 0 |]
    (Pool.init ~jobs:4 1 (fun i -> i));
  Alcotest.check_raises "negative size"
    (Invalid_argument "Pool.init: negative size") (fun () ->
      ignore (Pool.init ~jobs:1 (-1) (fun i -> i)))

let test_map_list () =
  let l = List.init 37 (fun i -> i) in
  Alcotest.(check (list int))
    "order preserved"
    (List.map (fun x -> x * 2) l)
    (Pool.map_list ~jobs:3 (fun x -> x * 2) l)

let test_lowest_index_error () =
  (* several tasks fail; the exception of the lowest-numbered one must
     surface, whatever worker hit it first *)
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d" jobs)
        (Failure "task 5")
        (fun () ->
          ignore
            (Pool.init ~jobs 32 (fun i ->
                 if i >= 5 && i mod 3 = 2 then
                   failwith (Printf.sprintf "task %d" i);
                 i))))
    [ 1; 2; 4 ]

let test_workers_really_cover_all_tasks () =
  (* a non-trivial fold over the results catches any dropped stripe *)
  let n = 1000 in
  let sum =
    Array.fold_left ( + ) 0 (Pool.init ~jobs:4 n (fun i -> i))
  in
  Alcotest.(check int) "sum 0..999" (n * (n - 1) / 2) sum

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "resolve" `Quick test_resolve;
          Alcotest.test_case "init matches serial" `Quick
            test_init_matches_serial;
          Alcotest.test_case "edge cases" `Quick test_init_edges;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "lowest-index error wins" `Quick
            test_lowest_index_error;
          Alcotest.test_case "full coverage" `Quick
            test_workers_really_cover_all_tasks;
        ] );
    ]
