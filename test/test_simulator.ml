(* Tests for the discrete-event simulation engine: timing semantics,
   conflict resolution, concurrency, livelock protection, run control. *)

module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module B = Net.Builder
module Sim = Pnut_sim.Simulator
module Trace = Pnut_trace.Trace

let delta_times kind trace name =
  let h = Trace.header trace in
  let tid =
    let rec find i =
      if h.Trace.h_transitions.(i) = name then i else find (i + 1)
    in
    find 0
  in
  Array.to_list (Trace.deltas trace)
  |> List.filter (fun d -> d.Trace.d_kind = kind && d.Trace.d_transition = tid)
  |> List.map (fun d -> d.Trace.d_time)

(* -- firing time semantics -- *)

let one_shot_net ~firing ~enabling =
  let b = B.create "oneshot" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let _ = B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ] ~firing ~enabling in
  B.build b

let test_firing_time () =
  let net = one_shot_net ~firing:(Net.Const 5.0) ~enabling:Net.Zero in
  let trace, outcome = Sim.trace ~until:100.0 net in
  Alcotest.(check (list (float 0.0))) "start at 0" [ 0.0 ]
    (delta_times Trace.Fire_start trace "t");
  Alcotest.(check (list (float 0.0))) "end at 5" [ 5.0 ]
    (delta_times Trace.Fire_end trace "t");
  Alcotest.(check bool) "dead after" true (outcome.Sim.stop = Sim.Dead);
  (* tokens on neither side during the firing *)
  let mid = Trace.state_at trace 2.5 in
  Alcotest.(check (array int)) "in transit" [| 0; 0 |] mid;
  let after = Trace.state_at trace 10.0 in
  Alcotest.(check (array int)) "delivered" [| 0; 1 |] after

let test_enabling_time () =
  let net = one_shot_net ~firing:Net.Zero ~enabling:(Net.Const 5.0) in
  let trace, _ = Sim.trace ~until:100.0 net in
  Alcotest.(check (list (float 0.0))) "fires at 5" [ 5.0 ]
    (delta_times Trace.Fire_start trace "t");
  (* contrast with firing time: the token stays visible until t=5 *)
  let mid = Trace.state_at trace 2.5 in
  Alcotest.(check (array int)) "token still on input" [| 1; 0 |] mid

let test_enabling_interrupted () =
  (* Two transitions race for the same token: the shorter enabling delay
     wins and the longer one, disabled by the theft, never fires. *)
  let b = B.create "race" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "slow_out" in
  let r = B.add_place b "fast_out" in
  let _ =
    B.add_transition b "slow" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ]
      ~enabling:(Net.Const 5.0)
  in
  let _ =
    B.add_transition b "fast" ~inputs:[ (p, 1) ] ~outputs:[ (r, 1) ]
      ~enabling:(Net.Const 2.0)
  in
  let net = B.build b in
  let trace, _ = Sim.trace ~until:100.0 net in
  Alcotest.(check (list (float 0.0))) "fast fires at 2" [ 2.0 ]
    (delta_times Trace.Fire_start trace "fast");
  Alcotest.(check (list (float 0.0))) "slow never fires" []
    (delta_times Trace.Fire_start trace "slow")

let test_enabling_clock_restarts () =
  (* p is periodically stolen and returned by a fast cycle; the slow
     transition (enabling 5) never accumulates 5 continuous units and
     never fires, demonstrating the restart policy. *)
  let b = B.create "restart" in
  let p = B.add_place b "p" ~initial:1 in
  let hold = B.add_place b "hold" in
  let out = B.add_place b "out" in
  let _ =
    B.add_transition b "steal" ~inputs:[ (p, 1) ] ~outputs:[ (hold, 1) ]
      ~enabling:(Net.Const 3.0)
  in
  let _ =
    B.add_transition b "return" ~inputs:[ (hold, 1) ] ~outputs:[ (p, 1) ]
      ~enabling:(Net.Const 1.0)
  in
  let _ =
    B.add_transition b "slow" ~inputs:[ (p, 1) ] ~outputs:[ (out, 1) ]
      ~enabling:(Net.Const 5.0)
  in
  let net = B.build b in
  let trace, _ = Sim.trace ~until:50.0 net in
  Alcotest.(check (list (float 0.0))) "slow starved" []
    (delta_times Trace.Fire_start trace "slow");
  Alcotest.(check bool) "steal keeps firing" true
    (List.length (delta_times Trace.Fire_start trace "steal") > 5)

let test_conflict_frequencies () =
  (* A (weight 9) and B (weight 1) compete for each token. *)
  let b = B.create "conflict" in
  let p = B.add_place b "p" ~initial:10000 in
  let a_out = B.add_place b "a_out" in
  let b_out = B.add_place b "b_out" in
  let _ =
    B.add_transition b "A" ~inputs:[ (p, 1) ] ~outputs:[ (a_out, 1) ]
      ~frequency:9.0
  in
  let _ =
    B.add_transition b "B" ~inputs:[ (p, 1) ] ~outputs:[ (b_out, 1) ]
      ~frequency:1.0
  in
  let net = B.build b in
  let st = Sim.create ~seed:7 net in
  let outcome = Sim.run ~max_events:10000 st in
  Alcotest.(check int) "all fired" 10000 outcome.Sim.started;
  let a = Marking.get (Sim.marking st) a_out in
  let bb = Marking.get (Sim.marking st) b_out in
  let share = float_of_int a /. float_of_int (a + bb) in
  Alcotest.(check bool)
    (Printf.sprintf "A share %.3f near 0.9" share)
    true
    (Float.abs (share -. 0.9) < 0.02)

let test_zero_delay_livelock_detected () =
  let b = B.create "zeno" in
  let p = B.add_place b "p" ~initial:1 in
  let _ = B.add_transition b "spin" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ] in
  let net = B.build b in
  let st = Sim.create ~max_instant_firings:100 net in
  (match Sim.run ~until:10.0 st with
  | _ -> Alcotest.fail "expected livelock error"
  | exception Sim.Sim_error (Sim.Livelock { firings; _ } as e) ->
    Alcotest.(check int) "firing cap" 100 firings;
    Testutil.check_contains "error message" (Sim.error_message e) "livelock"
  | exception Sim.Sim_error e ->
    Alcotest.failf "wrong error: %s" (Sim.error_message e))

let test_timed_self_loop_ok () =
  (* The same loop with a firing time is fine: it just beats at 1 Hz. *)
  let b = B.create "clock" in
  let p = B.add_place b "p" ~initial:1 in
  let _ =
    B.add_transition b "beat" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ]
      ~firing:(Net.Const 1.0)
  in
  let net = B.build b in
  let trace, outcome = Sim.trace ~until:10.0 net in
  Alcotest.(check bool) "horizon reached" true (outcome.Sim.stop = Sim.Horizon);
  (* beats at t = 0, 1, ..., 10: the horizon is inclusive *)
  Alcotest.(check int) "11 beats" 11
    (List.length (delta_times Trace.Fire_start trace "beat"))

let test_multi_server_concurrency () =
  (* three tokens, one long-firing transition: all three in flight at once *)
  let b = B.create "server" in
  let p = B.add_place b "jobs" ~initial:3 in
  let q = B.add_place b "done_" in
  let _ =
    B.add_transition b "serve" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ]
      ~firing:(Net.Const 10.0)
  in
  let net = B.build b in
  let st = Sim.create net in
  (* fire all three starts (at t=0) *)
  let rec go () =
    match Sim.step st with
    | Sim.Fired _ -> go ()
    | Sim.Advanced _ | Sim.Completed _ | Sim.Quiescent -> ()
  in
  go ();
  Alcotest.(check (array int)) "3 concurrent firings" [| 3 |] (Sim.in_flight st);
  let outcome = Sim.run ~until:100.0 st in
  Alcotest.(check int) "all finish" 3 outcome.Sim.finished;
  Alcotest.(check int) "delivered" 3 (Marking.get (Sim.marking st) q)

let test_horizon_cuts_events () =
  let net = one_shot_net ~firing:(Net.Const 5.0) ~enabling:Net.Zero in
  let trace, outcome = Sim.trace ~until:3.0 net in
  Alcotest.(check (float 0.0)) "clock at horizon" 3.0 outcome.Sim.final_clock;
  Alcotest.(check (list (float 0.0))) "end not processed" []
    (delta_times Trace.Fire_end trace "t");
  Alcotest.(check (float 0.0)) "trace final time" 3.0 (Trace.final_time trace)

let test_max_events () =
  let b = B.create "stream" in
  let p = B.add_place b "p" ~initial:1 in
  let _ =
    B.add_transition b "tick" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ]
      ~firing:(Net.Const 1.0)
  in
  let net = B.build b in
  let st = Sim.create net in
  let outcome = Sim.run ~max_events:5 st in
  Alcotest.(check bool) "stopped by limit" true (outcome.Sim.stop = Sim.Event_limit);
  Alcotest.(check int) "exactly 5" 5 outcome.Sim.started

let test_run_needs_bound () =
  let net = one_shot_net ~firing:Net.Zero ~enabling:Net.Zero in
  let st = Sim.create net in
  Alcotest.check_raises "no bound"
    (Invalid_argument "Simulator.run: needs a horizon or an event limit")
    (fun () -> ignore (Sim.run st))

let test_determinism_same_seed () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let t1, _ = Sim.trace ~seed:123 ~until:500.0 net in
  let t2, _ = Sim.trace ~seed:123 ~until:500.0 net in
  Alcotest.(check string) "identical traces"
    (Pnut_trace.Codec.to_string t1)
    (Pnut_trace.Codec.to_string t2)

let test_seed_changes_trace () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let t1, _ = Sim.trace ~seed:1 ~until:500.0 net in
  let t2, _ = Sim.trace ~seed:2 ~until:500.0 net in
  Alcotest.(check bool) "different traces" false
    (String.equal
       (Pnut_trace.Codec.to_string t1)
       (Pnut_trace.Codec.to_string t2))

(* Figure-4 style interpreted loop: fetch 3 operands then finish. *)
let interpreted_loop_net () =
  let b = B.create "loop" ~variables:[ ("n", Value.Int 3) ] in
  let work = B.add_place b "work" ~initial:1 in
  let fin = B.add_place b "finished" in
  let _ =
    B.add_transition b "fetch" ~inputs:[ (work, 1) ] ~outputs:[ (work, 1) ]
      ~firing:(Net.Const 1.0)
      ~predicate:Expr.(var "n" > int 0)
      ~action:[ Expr.Assign ("n", Expr.(var "n" - int 1)) ]
  in
  let _ =
    B.add_transition b "done_" ~inputs:[ (work, 1) ] ~outputs:[ (fin, 1) ]
      ~predicate:Expr.(var "n" = int 0)
  in
  B.build b

let test_predicates_and_actions () =
  let net = interpreted_loop_net () in
  let trace, outcome = Sim.trace ~until:100.0 net in
  Alcotest.(check int) "3 fetches" 3
    (List.length (delta_times Trace.Fire_start trace "fetch"));
  Alcotest.(check int) "one completion" 1
    (List.length (delta_times Trace.Fire_start trace "done_"));
  Alcotest.(check bool) "net dead after" true (outcome.Sim.stop = Sim.Dead);
  (* env changes recorded in the trace *)
  let env_final = Trace.env_after trace (Trace.length trace) in
  Alcotest.(check bool) "n reached 0" true
    (List.assoc "n" env_final = Value.Int 0)

let test_combined_enabling_and_firing () =
  (* enabling 2 THEN firing 3: start at 2, end at 5; tokens invisible
     only during the firing part *)
  let net = one_shot_net ~firing:(Net.Const 3.0) ~enabling:(Net.Const 2.0) in
  let trace, _ = Sim.trace ~until:100.0 net in
  Alcotest.(check (list (float 0.0))) "start at 2" [ 2.0 ]
    (delta_times Trace.Fire_start trace "t");
  Alcotest.(check (list (float 0.0))) "end at 5" [ 5.0 ]
    (delta_times Trace.Fire_end trace "t");
  Alcotest.(check (array int)) "visible during enabling" [| 1; 0 |]
    (Trace.state_at trace 1.0);
  Alcotest.(check (array int)) "in transit during firing" [| 0; 0 |]
    (Trace.state_at trace 3.5)

let test_weighted_arcs_consume_and_produce () =
  let b = B.create "weights" in
  let p = B.add_place b "p" ~initial:5 in
  let q = B.add_place b "q" in
  let _ =
    B.add_transition b "t" ~inputs:[ (p, 2) ] ~outputs:[ (q, 3) ]
      ~firing:(Net.Const 1.0)
  in
  let net = B.build b in
  let st = Sim.create net in
  let outcome = Sim.run ~until:100.0 st in
  (* 5 tokens allow two firings (consuming 4), leaving 1 *)
  Alcotest.(check int) "two firings" 2 outcome.Sim.started;
  Alcotest.(check int) "p leftover" 1 (Sim.tokens st "p");
  Alcotest.(check int) "q produced" 6 (Sim.tokens st "q")

let test_inhibitor_respected_dynamically () =
  (* producer fills q; t is inhibited once q holds 2 tokens *)
  let b = B.create "inhib" in
  let src = B.add_place b "src" ~initial:10 in
  let q = B.add_place b "q" in
  let fired = B.add_place b "fired" in
  let _ =
    B.add_transition b "fill" ~inputs:[ (src, 1) ] ~outputs:[ (q, 1) ]
      ~firing:(Net.Const 1.0)
  in
  let _ =
    B.add_transition b "t" ~inputs:[ (src, 1) ] ~inhibitors:[ (q, 2) ]
      ~outputs:[ (fired, 1) ]
      ~enabling:(Net.Const 3.5)
  in
  let net = B.build b in
  let trace, _ = Sim.trace ~until:30.0 net in
  (* q reaches 2 at time 2; t needs 3.5 continuous units and never gets
     them *)
  Alcotest.(check (list (float 0.0))) "t inhibited forever" []
    (delta_times Trace.Fire_start trace "t")

let test_dynamic_duration_from_table () =
  let b =
    B.create "dyn"
      ~variables:[ ("k", Value.Int 2) ]
      ~tables:[ ("delay", [| Value.Int 1; Value.Int 4; Value.Int 9 |]) ]
  in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let _ =
    B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ]
      ~firing:(Net.Dynamic (Expr.index "delay" (Expr.var "k")))
  in
  let net = B.build b in
  let trace, _ = Sim.trace ~until:100.0 net in
  Alcotest.(check (list (float 0.0))) "table-driven delay" [ 9.0 ]
    (delta_times Trace.Fire_end trace "t")

let test_step_api_sequence () =
  let net = one_shot_net ~firing:(Net.Const 2.0) ~enabling:Net.Zero in
  let st = Sim.create net in
  (match Sim.step st with
  | Sim.Fired 0 -> ()
  | _ -> Alcotest.fail "expected a firing first");
  (match Sim.step st with
  | Sim.Advanced t -> Alcotest.(check (float 0.0)) "advance to 2" 2.0 t
  | _ -> Alcotest.fail "expected clock advance");
  (match Sim.step st with
  | Sim.Completed 0 -> ()
  | _ -> Alcotest.fail "expected completion");
  match Sim.step st with
  | Sim.Quiescent -> ()
  | _ -> Alcotest.fail "expected quiescence"

let test_replications_differ () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let reports = ref [] in
  let outcomes =
    Sim.replications ~seed:5 ~runs:3 ~until:300.0 net (fun i ->
        let sink, get = Pnut_stat.Stat.sink ~run:(i + 1) () in
        reports := (fun () -> get ()) :: !reports;
        sink)
  in
  Alcotest.(check int) "three runs" 3 (List.length outcomes);
  let throughputs =
    List.map (fun get -> (Pnut_stat.Stat.transition (get ()) "Issue").Pnut_stat.Stat.ts_ends) !reports
  in
  (* independent streams: not all three runs coincide *)
  Alcotest.(check bool) "streams differ" true
    (List.length (List.sort_uniq compare throughputs) > 1)

let test_action_error_surfaces () =
  (* an action writing past a table's bounds must raise Sim_error with a
     useful message, not crash obscurely *)
  let b =
    B.create "bad_action"
      ~tables:[ ("t", [| Value.Int 0 |]) ]
      ~variables:[ ("i", Value.Int 5) ]
  in
  let p = B.add_place b "p" ~initial:1 in
  let _ =
    B.add_transition b "boom" ~inputs:[ (p, 1) ]
      ~action:[ Expr.Table_assign ("t", Expr.var "i", Expr.int 1) ]
  in
  let net = B.build b in
  match Sim.trace ~until:10.0 net with
  | _ -> Alcotest.fail "expected Sim_error"
  | exception Sim.Sim_error (Sim.Action_error { transition; _ } as e) ->
    Alcotest.(check string) "culprit" "boom" transition;
    Testutil.check_contains "message" (Sim.error_message e) "out of bounds"
  | exception Sim.Sim_error e ->
    Alcotest.failf "wrong error: %s" (Sim.error_message e)

let test_capacity_monitoring () =
  (* a producer overfilling a capacity-2 place: silent by default, a
     loud Sim_error with check_capacities *)
  let make () =
    let b = B.create "overflow" in
    let src = B.add_place b "src" ~initial:5 in
    let buf = B.add_place b "buf" ~capacity:2 in
    let _ =
      B.add_transition b "fill" ~inputs:[ (src, 1) ] ~outputs:[ (buf, 1) ]
        ~firing:(Net.Const 1.0)
    in
    B.build b
  in
  (* default: the model bug goes unnoticed *)
  let st = Sim.create (make ()) in
  let _ = Sim.run ~until:100.0 st in
  Alcotest.(check int) "silently overfilled" 5 (Sim.tokens st "buf");
  (* monitored: caught at the third fill *)
  let st2 = Sim.create ~check_capacities:true (make ()) in
  match Sim.run ~until:100.0 st2 with
  | _ -> Alcotest.fail "expected capacity violation"
  | exception Sim.Sim_error (Sim.Capacity_violation { place; capacity; _ } as e)
    ->
    Alcotest.(check string) "place" "buf" place;
    Alcotest.(check int) "capacity" 2 capacity;
    let msg = Sim.error_message e in
    Testutil.check_contains "message" msg "capacity violation: place buf";
    Testutil.check_contains "culprit" msg "after fill fired"
  | exception Sim.Sim_error e ->
    Alcotest.failf "wrong error: %s" (Sim.error_message e)

let test_manual_fire_api () =
  let net = one_shot_net ~firing:Net.Zero ~enabling:Net.Zero in
  let st = Sim.create net in
  Alcotest.(check (list int)) "t fireable" [ 0 ] (Sim.fireable_transitions st);
  Sim.fire_transition st 0;
  Alcotest.(check int) "fired" 1 (Sim.events_started st);
  Alcotest.(check (list int)) "nothing left" [] (Sim.fireable_transitions st);
  Alcotest.check_raises "refire rejected"
    (Invalid_argument "Simulator.fire_transition: t is not fireable now")
    (fun () -> Sim.fire_transition st 0)

let test_tokens_accessor () =
  let net = one_shot_net ~firing:Net.Zero ~enabling:(Net.Const 1.0) in
  let st = Sim.create net in
  Alcotest.(check int) "initial p" 1 (Sim.tokens st "p");
  Alcotest.(check int) "initial q" 0 (Sim.tokens st "q");
  Alcotest.check_raises "unknown place" Not_found (fun () ->
      ignore (Sim.tokens st "nope"))

(* -- robustness: deadlock diagnosis, watchdog, checkpoint/restore -- *)

let test_deadlock_diagnosis () =
  (* one transition starved, one self-inhibited, one with a false
     predicate: the diagnosis must name the exact blocker of each *)
  let b = B.create "dead" in
  let fuel = B.add_place b "fuel" in
  let full = B.add_place b "full" ~initial:2 in
  let out = B.add_place b "out" in
  let _ = B.add_transition b "go" ~inputs:[ (fuel, 1) ] ~outputs:[ (out, 1) ] in
  let _ =
    B.add_transition b "stall" ~inputs:[ (full, 1) ]
      ~inhibitors:[ (full, 1) ] ~outputs:[ (out, 1) ]
  in
  let _ =
    B.add_transition b "guarded" ~inputs:[ (full, 1) ]
      ~predicate:(Expr.bool false) ~outputs:[ (out, 1) ]
  in
  let net = B.build b in
  let st = Sim.create net in
  let outcome = Sim.run ~until:50.0 st in
  Alcotest.(check bool) "dead" true (outcome.Sim.stop = Sim.Dead);
  let d = Sim.diagnose st in
  let reasons name =
    (List.find (fun t -> t.Sim.td_name = name) d.Sim.dg_transitions)
      .Sim.td_reasons
  in
  (match reasons "go" with
  | [ Sim.Missing_tokens { place = "fuel"; have = 0; need = 1 } ] -> ()
  | _ -> Alcotest.fail "go should report missing fuel");
  (match reasons "stall" with
  | [ Sim.Inhibited { place = "full"; have = 2; limit = 1 } ] -> ()
  | _ -> Alcotest.fail "stall should report the inhibitor");
  (match reasons "guarded" with
  | [ Sim.Predicate_false _ ] -> ()
  | _ -> Alcotest.fail "guarded should report its predicate");
  let rendered = Format.asprintf "%a" Sim.pp_diagnosis d in
  Testutil.check_contains "names the starved place" rendered "fuel";
  Testutil.check_contains "names the inhibitor" rendered "full"

let test_watchdog_fires () =
  (* a 1 Hz self-loop never dies; with a zero wall budget the watchdog
     must abort the unbounded run instead of hanging *)
  let b = B.create "spin" in
  let p = B.add_place b "p" ~initial:1 in
  let _ =
    B.add_transition b "beat" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ]
      ~firing:(Net.Const 1.0)
  in
  let net = B.build b in
  let st = Sim.create net in
  match Sim.run ~until:infinity ~wall_limit_s:0.0 st with
  | _ -> Alcotest.fail "expected watchdog abort"
  | exception Sim.Sim_error (Sim.Watchdog { wall_seconds; _ } as e) ->
    Alcotest.(check (float 0.0)) "budget" 0.0 wall_seconds;
    Testutil.check_contains "message" (Sim.error_message e) "watchdog"
  | exception Sim.Sim_error e ->
    Alcotest.failf "wrong error: %s" (Sim.error_message e)

let suffix_of trace ~after =
  Array.to_list (Trace.deltas trace)
  |> List.filter (fun d -> d.Trace.d_time > after)
  |> List.map (fun d ->
         Format.asprintf "%g %s #%d %s"
           d.Trace.d_time
           (match d.Trace.d_kind with
           | Trace.Fire_start -> "start"
           | Trace.Fire_end -> "end")
           d.Trace.d_transition
           (String.concat ","
              (List.map
                 (fun (p, dl) -> Printf.sprintf "%d:%+d" p dl)
                 d.Trace.d_marking)))

let test_checkpoint_restore_identical () =
  (* pause the pipeline model mid-run, serialize the checkpoint through
     its textual codec, restore, and compare against the uninterrupted
     run: the trace suffixes must match event for event *)
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let cut = 150.0 and stop = 300.0 in
  let full_sink, full_get = Trace.collector () in
  let st = Sim.create ~seed:11 ~sink:full_sink net in
  let _ = Sim.run ~until:stop st in
  let uninterrupted = full_get () in
  (* same seed, but stop at the cut and snapshot *)
  let st1 = Sim.create ~seed:11 net in
  let _ = Sim.run ~until:cut ~finish:false st1 in
  let ck = Sim.checkpoint st1 in
  let text = Pnut_sim.Checkpoint.to_string ck in
  let ck = Pnut_sim.Checkpoint.of_string text in
  let rest_sink, rest_get = Trace.collector () in
  let st2 = Sim.restore ~sink:rest_sink net ck in
  Alcotest.(check (float 0.0)) "clock restored" cut (Sim.clock st2);
  let _ = Sim.run ~until:stop st2 in
  let resumed = rest_get () in
  let expected = suffix_of uninterrupted ~after:cut in
  let got = suffix_of resumed ~after:cut in
  Alcotest.(check bool) "suffix is non-trivial" true (List.length expected > 10);
  Alcotest.(check (list string)) "identical suffix" expected got

let test_restore_rejects_wrong_net () =
  let net = one_shot_net ~firing:Net.Zero ~enabling:(Net.Const 1.0) in
  let st = Sim.create net in
  let ck = Sim.checkpoint st in
  let other = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  match Sim.restore other ck with
  | _ -> Alcotest.fail "expected restore error"
  | exception Sim.Sim_error (Sim.Restore_error _) -> ()
  | exception Sim.Sim_error e ->
    Alcotest.failf "wrong error: %s" (Sim.error_message e)

let () =
  Alcotest.run "simulator"
    [
      ( "timing",
        [
          Alcotest.test_case "firing time" `Quick test_firing_time;
          Alcotest.test_case "enabling time" `Quick test_enabling_time;
          Alcotest.test_case "enabling interrupted" `Quick test_enabling_interrupted;
          Alcotest.test_case "enabling clock restarts" `Quick
            test_enabling_clock_restarts;
          Alcotest.test_case "combined enabling+firing" `Quick
            test_combined_enabling_and_firing;
          Alcotest.test_case "weighted arcs" `Quick
            test_weighted_arcs_consume_and_produce;
          Alcotest.test_case "dynamic inhibition" `Quick
            test_inhibitor_respected_dynamically;
          Alcotest.test_case "dynamic durations" `Quick
            test_dynamic_duration_from_table;
        ] );
      ( "conflicts",
        [
          Alcotest.test_case "frequencies" `Slow test_conflict_frequencies;
          Alcotest.test_case "livelock detected" `Quick
            test_zero_delay_livelock_detected;
          Alcotest.test_case "timed self-loop" `Quick test_timed_self_loop_ok;
          Alcotest.test_case "multi-server" `Quick test_multi_server_concurrency;
        ] );
      ( "run control",
        [
          Alcotest.test_case "horizon" `Quick test_horizon_cuts_events;
          Alcotest.test_case "max events" `Quick test_max_events;
          Alcotest.test_case "needs bound" `Quick test_run_needs_bound;
          Alcotest.test_case "determinism" `Quick test_determinism_same_seed;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_trace;
          Alcotest.test_case "step API" `Quick test_step_api_sequence;
          Alcotest.test_case "replications" `Quick test_replications_differ;
          Alcotest.test_case "action errors" `Quick test_action_error_surfaces;
          Alcotest.test_case "capacity monitoring" `Quick test_capacity_monitoring;
          Alcotest.test_case "manual firing" `Quick test_manual_fire_api;
          Alcotest.test_case "tokens accessor" `Quick test_tokens_accessor;
        ] );
      ( "interpreted",
        [ Alcotest.test_case "predicates and actions" `Quick test_predicates_and_actions ]
      );
      ( "robustness",
        [
          Alcotest.test_case "deadlock diagnosis" `Quick test_deadlock_diagnosis;
          Alcotest.test_case "watchdog" `Quick test_watchdog_fires;
          Alcotest.test_case "checkpoint restore" `Quick
            test_checkpoint_restore_identical;
          Alcotest.test_case "restore wrong net" `Quick
            test_restore_rejects_wrong_net;
        ] );
    ]
