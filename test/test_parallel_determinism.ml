(* The determinism contract of the multicore layer: every parallel
   entry point returns bit-identical results for every [jobs] value. *)

module Net = Pnut_core.Net
module Value = Pnut_core.Value
module Expr = Pnut_core.Expr
module B = Net.Builder
module Graph = Pnut_reach.Graph
module Timed = Pnut_reach.Timed
module Stat = Pnut_stat.Stat
module Replication = Pnut_stat.Replication
module Campaign = Pnut_fault.Campaign

let pipeline () = Pnut_pipeline.Model.full Pnut_pipeline.Config.default

(* A deterministic interpreted net: variables and a table influence both
   a predicate and actions, so states differ in env as well as in
   marking. *)
let interpreted_net () =
  let b =
    B.create "interp"
      ~variables:[ ("n", Value.Int 0); ("mode", Value.Int 0) ]
      ~tables:[ ("hist", [| Value.Int 0; Value.Int 0 |]) ]
  in
  let p = B.add_place b "p" ~initial:2 in
  let q = B.add_place b "q" in
  let _ =
    B.add_transition b "step" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ]
      ~predicate:Expr.(var "n" < int 4)
      ~action:
        [
          Expr.Assign ("n", Expr.(var "n" + int 1));
          Expr.Table_assign ("hist", Expr.var "mode", Expr.var "n");
        ]
  in
  let _ =
    B.add_transition b "flip" ~inputs:[ (q, 1) ] ~outputs:[ (p, 1) ]
      ~action:[ Expr.Assign ("mode", Expr.(int 1 - var "mode")) ]
  in
  B.build b

let graph_digest g =
  let states =
    List.init (Graph.num_states g) (fun i ->
        let s = Graph.state g i in
        (s.Graph.s_marking, s.Graph.s_env))
  in
  (states, Graph.edges g)

let check_graph_parity name net =
  let serial = Graph.build ~jobs:1 net in
  List.iter
    (fun jobs ->
      let parallel = Graph.build ~jobs net in
      Alcotest.(check bool)
        (Printf.sprintf "%s: jobs=%d graph identical" name jobs)
        true
        (graph_digest serial = graph_digest parallel))
    [ 2; 4 ]

let test_graph_pipeline () = check_graph_parity "pipeline" (pipeline ())
let test_graph_interpreted () = check_graph_parity "interpreted" (interpreted_net ())

let check_packed_parity name net =
  let serial = Graph.build ~jobs:1 ~packed:true net in
  List.iter
    (fun jobs ->
      let parallel = Graph.build ~jobs ~packed:true net in
      Alcotest.(check bool)
        (Printf.sprintf "%s: jobs=%d packed graph identical" name jobs)
        true
        (graph_digest serial = graph_digest parallel
        && Graph.packed_arrays serial = Graph.packed_arrays parallel))
    [ 2; 4 ]

(* the pipeline model is variable-free, so jobs > 1 routes through the
   sharded builder; the interpreted net exercises its fallback gate *)
let test_packed_pipeline () = check_packed_parity "pipeline" (pipeline ())

let test_packed_interpreted () =
  check_packed_parity "interpreted" (interpreted_net ())

(* a deterministic timed net with real concurrency: two producers with
   different periods feeding a consumer *)
let timed_net () =
  let b = B.create "timed" in
  let free = B.add_place b "free" ~initial:2 in
  let full = B.add_place b "full" in
  let _ =
    B.add_transition b "fast" ~inputs:[ (free, 1) ] ~outputs:[ (full, 1) ]
      ~firing:(Net.Const 2.0)
  in
  let _ =
    B.add_transition b "slow" ~inputs:[ (free, 1) ] ~outputs:[ (full, 1) ]
      ~firing:(Net.Const 3.0)
  in
  let _ =
    B.add_transition b "drain" ~inputs:[ (full, 2) ] ~outputs:[ (free, 2) ]
      ~enabling:(Net.Const 1.0)
  in
  B.build b

let timed_digest g =
  let states =
    List.init (Timed.num_states g) (fun i ->
        let s = Timed.state g i in
        ( s.Timed.ts_marking, s.Timed.ts_flight, s.Timed.ts_pending,
          s.Timed.ts_flight_iv, s.Timed.ts_pending_iv, s.Timed.ts_env ))
  in
  let edges =
    List.concat (List.init (Timed.num_states g) (fun i -> Timed.successors g i))
  in
  (states, edges)

let test_timed_parity () =
  (* the packed arenas — not just the decoded views — must be
     byte-identical for every team size, and the boxed serial build must
     decode to the same graph *)
  let serial = Timed.build ~jobs:1 ~packed:true (timed_net ()) in
  Alcotest.(check bool) "timed class graph non-trivial" true
    (Timed.num_states serial > 4);
  let boxed = Timed.build (timed_net ()) in
  Alcotest.(check bool) "boxed build identical to packed" true
    (timed_digest serial = timed_digest boxed);
  List.iter
    (fun jobs ->
      let parallel = Timed.build ~jobs ~packed:true (timed_net ()) in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d packed class arrays byte-identical" jobs)
        true
        (Timed.packed_arrays serial = Timed.packed_arrays parallel
        && Timed.domain_arrays serial = Timed.domain_arrays parallel);
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d timed graph identical" jobs)
        true
        (timed_digest serial = timed_digest parallel))
    [ 2; 4 ]

let test_replicate_parity () =
  let net = pipeline () in
  let estimate jobs =
    Replication.replicate ~seed:11 ~jobs ~runs:6 ~until:500.0 net (fun r ->
        Stat.throughput r "Issue")
  in
  let serial = estimate 1 in
  Alcotest.(check bool) "estimate non-degenerate" true (serial.Replication.mean > 0.0);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d estimate bit-identical" jobs)
        true
        (estimate jobs = serial))
    [ 2; 4 ]

let test_campaign_parity () =
  let net = pipeline () in
  let specs =
    Pnut_fault.Fault.parse "stuck End_prefetch from 50 until 150"
  in
  let report jobs =
    Campaign.render (Campaign.run ~seed:3 ~runs:4 ~until:500.0 ~jobs net specs)
  in
  let serial = report 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d report identical" jobs)
        serial (report jobs))
    [ 2; 4 ]

let () =
  Alcotest.run "parallel-determinism"
    [
      ( "reach",
        [
          Alcotest.test_case "pipeline graph parity" `Slow test_graph_pipeline;
          Alcotest.test_case "interpreted graph parity" `Quick
            test_graph_interpreted;
          Alcotest.test_case "packed sharded parity" `Slow test_packed_pipeline;
          Alcotest.test_case "packed fallback parity" `Quick
            test_packed_interpreted;
          Alcotest.test_case "timed graph parity" `Quick test_timed_parity;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "replicate parity" `Slow test_replicate_parity;
          Alcotest.test_case "campaign parity" `Slow test_campaign_parity;
        ] );
    ]
