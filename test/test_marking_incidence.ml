(* Tests for markings and for the incidence-matrix / invariant analysis. *)

module Marking = Pnut_core.Marking
module Incidence = Pnut_core.Incidence
module Net = Pnut_core.Net
module B = Net.Builder

(* -- Marking -- *)

let test_marking_basics () =
  let m = Marking.create 3 in
  Alcotest.(check int) "size" 3 (Marking.size m);
  Alcotest.(check int) "initial zero" 0 (Marking.get m 1);
  Marking.set m 1 4;
  Alcotest.(check int) "set/get" 4 (Marking.get m 1);
  Marking.add m 1 (-3);
  Alcotest.(check int) "add negative" 1 (Marking.get m 1);
  Alcotest.(check int) "total" 1 (Marking.total m)

let test_marking_negative_rejected () =
  let m = Marking.create 2 in
  Alcotest.check_raises "set negative"
    (Invalid_argument "Marking.set: negative count") (fun () ->
      Marking.set m 0 (-1));
  Alcotest.check_raises "add below zero"
    (Invalid_argument "Marking.add: place 0 would hold -2 tokens") (fun () ->
      Marking.add m 0 (-2));
  Alcotest.check_raises "of_array negative"
    (Invalid_argument "Marking.of_array: negative count") (fun () ->
      ignore (Marking.of_array [| 1; -1 |]))

let test_marking_add_overflow () =
  (* PR 7 regression: [add] used to wrap silently past [max_int] and
     then report the wrapped negative as "would hold n tokens" *)
  let m = Marking.create 1 in
  Marking.set m 0 max_int;
  Alcotest.check_raises "max_int + 1 overflows"
    (Invalid_argument
       (Printf.sprintf
          "Marking.add: place 0 token count overflows max_int (%d + 1)"
          max_int))
    (fun () -> Marking.add m 0 1);
  Alcotest.(check int) "count untouched after the failed add" max_int
    (Marking.get m 0);
  (* the largest legal add still works *)
  Marking.set m 0 1;
  Marking.add m 0 (max_int - 1);
  Alcotest.(check int) "reaches max_int exactly" max_int (Marking.get m 0);
  Marking.set m 0 (max_int - 2);
  Alcotest.check_raises "near-max wrap detected"
    (Invalid_argument
       (Printf.sprintf
          "Marking.add: place 0 token count overflows max_int (%d + 5)"
          (max_int - 2)))
    (fun () -> Marking.add m 0 5)

let test_marking_copy_equal () =
  let m = Marking.of_array [| 1; 2; 3 |] in
  let c = Marking.copy m in
  Alcotest.(check bool) "copies equal" true (Marking.equal m c);
  Marking.set c 0 9;
  Alcotest.(check bool) "independent" false (Marking.equal m c);
  Alcotest.(check int) "original untouched" 1 (Marking.get m 0)

let test_marking_keys () =
  let a = Marking.of_array [| 1; 2 |] in
  let b = Marking.of_array [| 1; 2 |] in
  let c = Marking.of_array [| 2; 1 |] in
  Alcotest.(check string) "same key" (Marking.to_key a) (Marking.to_key b);
  Alcotest.(check bool) "different key" false
    (String.equal (Marking.to_key a) (Marking.to_key c));
  Alcotest.(check int) "hash consistent" (Marking.hash a) (Marking.hash b)

(* -- Incidence -- *)

(* The paper's bus: Bus_free <-> Bus_busy moved by two transitions. *)
let bus_net () =
  let b = B.create "bus" in
  let free = B.add_place b "Bus_free" ~initial:1 in
  let busy = B.add_place b "Bus_busy" in
  let grab = B.add_transition b "grab" ~inputs:[ (free, 1) ] ~outputs:[ (busy, 1) ] in
  let release =
    B.add_transition b "release" ~inputs:[ (busy, 1) ] ~outputs:[ (free, 1) ]
  in
  (B.build b, free, busy, grab, release)

let test_incidence_entries () =
  let net, free, busy, grab, release = bus_net () in
  let c = Incidence.of_net net in
  Alcotest.(check int) "np" 2 (Incidence.num_places c);
  Alcotest.(check int) "nt" 2 (Incidence.num_transitions c);
  Alcotest.(check int) "grab takes free" (-1) (Incidence.entry c free grab);
  Alcotest.(check int) "grab gives busy" 1 (Incidence.entry c busy grab);
  Alcotest.(check int) "release takes busy" (-1) (Incidence.entry c busy release);
  Alcotest.(check int) "release gives free" 1 (Incidence.entry c free release)

let test_incidence_weights_and_selfloop () =
  let b = B.create "weights" in
  let p = B.add_place b "p" ~initial:4 in
  let q = B.add_place b "q" in
  let t =
    (* self-loop on p with weight 2 in, 3 out: net effect +1 *)
    B.add_transition b "t" ~inputs:[ (p, 2) ] ~outputs:[ (p, 3); (q, 2) ]
  in
  let net = B.build b in
  let c = Incidence.of_net net in
  Alcotest.(check int) "self-loop net effect" 1 (Incidence.entry c p t);
  Alcotest.(check int) "weighted output" 2 (Incidence.entry c q t);
  let m = [| 4; 0 |] in
  Incidence.apply c m t;
  Alcotest.(check (array int)) "apply" [| 5; 2 |] m

let test_bus_p_invariant () =
  let net, free, busy, _, _ = bus_net () in
  let c = Incidence.of_net net in
  let invs = Incidence.p_invariants c in
  Alcotest.(check int) "one invariant" 1 (List.length invs);
  let y = List.hd invs in
  Alcotest.(check int) "free weight" 1 y.(free);
  Alcotest.(check int) "busy weight" 1 y.(busy);
  Alcotest.(check bool) "conserved" true (Incidence.conserved c y);
  Alcotest.(check bool) "covered" true (Incidence.covered_by_p_invariants c);
  (* invariant value on the initial marking *)
  Alcotest.(check int) "value 1" 1 (Incidence.weighted_sum y [| 1; 0 |]);
  ignore net

let test_bus_t_invariant () =
  let net, _, _, grab, release = bus_net () in
  let c = Incidence.of_net net in
  let invs = Incidence.t_invariants c in
  Alcotest.(check int) "one t-invariant" 1 (List.length invs);
  let x = List.hd invs in
  Alcotest.(check int) "grab count" 1 x.(grab);
  Alcotest.(check int) "release count" 1 x.(release);
  ignore net

let test_unbounded_net_not_covered () =
  let b = B.create "source" in
  let p = B.add_place b "p" in
  let _ = B.add_transition b "spawn" ~outputs:[ (p, 1) ] in
  let net = B.build b in
  let c = Incidence.of_net net in
  Alcotest.(check bool) "source place not covered" false
    (Incidence.covered_by_p_invariants c);
  Alcotest.(check (list (array int))) "no p-invariants" []
    (Incidence.p_invariants c)

let test_pipeline_invariants_conserved () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let c = Incidence.of_net net in
  let invs = Incidence.p_invariants c in
  Alcotest.(check bool) "found invariants" true (List.length invs > 0);
  List.iter
    (fun y ->
      Alcotest.(check bool) "each conserved" true (Incidence.conserved c y))
    invs;
  (* the bus one-hot invariant must be among them *)
  let free = Net.place_id net "Bus_free" in
  let busy = Net.place_id net "Bus_busy" in
  let bus_inv =
    List.exists
      (fun y ->
        y.(free) = 1 && y.(busy) = 1
        && Array.to_list y
           |> List.mapi (fun i w -> (i, w))
           |> List.for_all (fun (i, w) -> i = free || i = busy || w = 0))
      invs
  in
  Alcotest.(check bool) "bus one-hot invariant found" true bus_inv

let test_pipeline_t_invariant_reproduces_marking () =
  (* firing each transition as many times as a T-invariant says returns
     the net to its starting marking: verify algebraically with the
     incidence matrix on every T-invariant of the pipeline *)
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let c = Incidence.of_net net in
  let invs = Incidence.t_invariants c in
  Alcotest.(check bool) "t-invariants exist" true (invs <> []);
  List.iter
    (fun x ->
      let m = Array.make (Net.num_places net) 0 in
      Array.iteri
        (fun t count ->
          for _ = 1 to count do
            Incidence.apply c m t
          done)
        x;
      Alcotest.(check (array int)) "marking unchanged"
        (Array.make (Net.num_places net) 0)
        m)
    invs

let test_place_bounds () =
  (* bus: the one-hot invariant bounds both places at the invariant
     total; pump: q has no invariant cover and no capacity — unknown *)
  let net, free, busy, _, _ = bus_net () in
  let bounds = Incidence.place_bounds net in
  Alcotest.(check bool) "free bounded at 1" true (bounds.(free) = Some 1);
  Alcotest.(check bool) "busy bounded at 1" true (bounds.(busy) = Some 1);
  let b = B.create "pump" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let r = B.add_place b "r" ~capacity:7 in
  ignore
    (B.add_transition b "t" ~inputs:[ (p, 1) ]
       ~outputs:[ (p, 1); (q, 1); (r, 1) ]
      : Net.transition_id);
  let pump = B.build b in
  let bounds = Incidence.place_bounds pump in
  Alcotest.(check bool) "p bounded by its invariant" true
    (bounds.(p) = Some 1);
  Alcotest.(check bool) "q unbounded" true (bounds.(q) = None);
  Alcotest.(check bool) "r bounded by declared capacity" true
    (bounds.(r) = Some 7)

(* -- static dependency relations (stubborn-set input) -- *)

let ids = Alcotest.(array int)

let test_bus_relations () =
  let net, free, busy, grab, release = bus_net () in
  let c = Incidence.conflicts net in
  (* grab and release share both places — mutually conflicting *)
  Alcotest.check ids "conflicts grab" [| release |] c.(grab);
  Alcotest.check ids "conflicts release" [| grab |] c.(release);
  let e = Incidence.enablers net in
  Alcotest.check ids "free produced by release" [| release |] e.(free);
  Alcotest.check ids "busy produced by grab" [| grab |] e.(busy);
  let k = Incidence.consumers net in
  Alcotest.check ids "free consumed by grab" [| grab |] k.(free);
  Alcotest.check ids "busy consumed by release" [| release |] k.(busy)

let test_prefetch_relations () =
  (* Figure 1 closed with the consume transition; ids in build order:
     Start_prefetch 0, End_prefetch 1, Decode 2, consume 3.  Hand-check:
     Start/End share the bus and pre_fetching; Start/Decode share
     Empty_I_buffers; End/Decode share Full_I_buffers; Decode/consume
     share Decoded_instruction and Decoder_ready; Start and End share
     nothing with consume. *)
  let net = Pnut_pipeline.Model.prefetch_only Pnut_pipeline.Config.default in
  let start = Net.transition_id net "Start_prefetch" in
  let stop = Net.transition_id net "End_prefetch" in
  let decode = Net.transition_id net "Decode" in
  let consume = Net.transition_id net "consume" in
  let c = Incidence.conflicts net in
  Alcotest.check ids "Start_prefetch" [| stop; decode |] c.(start);
  Alcotest.check ids "End_prefetch" [| start; decode |] c.(stop);
  Alcotest.check ids "Decode" [| start; stop; consume |] c.(decode);
  Alcotest.check ids "consume" [| decode |] c.(consume);
  let e = Incidence.enablers net in
  let k = Incidence.consumers net in
  let p name = Net.place_id net name in
  Alcotest.check ids "Bus_free refilled by End" [| stop |] e.(p "Bus_free");
  Alcotest.check ids "Bus_free drained by Start" [| start |] k.(p "Bus_free");
  Alcotest.check ids "buffers refilled by Decode" [| decode |]
    e.(p "Empty_I_buffers");
  Alcotest.check ids "buffers drained by Start" [| start |]
    k.(p "Empty_I_buffers");
  Alcotest.check ids "Full filled by End" [| stop |] e.(p "Full_I_buffers");
  Alcotest.check ids "Full drained by Decode" [| decode |]
    k.(p "Full_I_buffers");
  Alcotest.check ids "decoder recycled by consume" [| consume |]
    e.(p "Decoder_ready");
  Alcotest.check ids "decoder held by Decode" [| decode |]
    k.(p "Decoder_ready");
  (* pending places carry only inhibitor arcs here: nothing moves them *)
  Alcotest.check ids "no producer of Operand_fetch_pending" [||]
    e.(p "Operand_fetch_pending");
  Alcotest.check ids "no consumer of Operand_fetch_pending" [||]
    k.(p "Operand_fetch_pending")

let test_relation_selfloop_and_inhibitor () =
  (* a pure self-loop moves nothing; an inhibitor arc relates but never
     produces or consumes *)
  let b = B.create "rel" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let keep =
    B.add_transition b "keep" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ]
  in
  let guard =
    B.add_transition b "guard" ~inhibitors:[ (p, 1) ] ~outputs:[ (q, 1) ]
  in
  let net = B.build b in
  let c = Incidence.conflicts net in
  Alcotest.check ids "self-loop still conflicts via p" [| guard |] c.(keep);
  Alcotest.check ids "inhibitor conflicts via p" [| keep |] c.(guard);
  let e = Incidence.enablers net in
  let k = Incidence.consumers net in
  Alcotest.check ids "self-loop produces nothing into p" [||] e.(p);
  Alcotest.check ids "self-loop consumes nothing from p" [||] k.(p);
  Alcotest.check ids "guard fills q" [| guard |] e.(q)

let test_full_pipeline_relations_symmetric () =
  (* structural sanity on the Figure 1-3 net: the conflict relation is
     symmetric and irreflexive, and every producer/consumer entry moves
     the place it is filed under *)
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let c = Incidence.conflicts net in
  Array.iteri
    (fun t row ->
      Array.iter
        (fun t' ->
          Alcotest.(check bool) "irreflexive" true (t' <> t);
          Alcotest.(check bool) "symmetric" true
            (Array.exists (fun x -> x = t) c.(t')))
        row)
    c;
  let inc = Incidence.of_net net in
  let e = Incidence.enablers net in
  let k = Incidence.consumers net in
  Array.iteri
    (fun p row ->
      Array.iter
        (fun t ->
          Alcotest.(check bool) "producer raises" true
            (Incidence.entry inc p t > 0))
        row;
      Array.iter
        (fun t ->
          Alcotest.(check bool) "consumer lowers" true
            (Incidence.entry inc p t < 0))
        k.(p))
    e

let test_pp_vector () =
  let net, _, _, _, _ = bus_net () in
  let s = Format.asprintf "%a" (Incidence.pp_vector net `Place) [| 1; 2 |] in
  Alcotest.(check string) "rendering" "Bus_free + 2*Bus_busy" s

(* property: along any simulation trace, the adjusted invariant value
     y.m + sum_t in_flight(t) * (y . W_out(t))
   is constant for every P-invariant y.  (Tokens inside a firing
   transition are on neither side, so they are accounted by the output
   weights: y.W_out = y.W_in because y^T C = 0.) *)
let prop_invariant_constant =
  QCheck2.Test.make ~name:"P-invariants constant under firing" ~count:50
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
      let c = Incidence.of_net net in
      let invs = Incidence.p_invariants c in
      let trace, _ = Pnut_sim.Simulator.trace ~seed ~max_events:200 net in
      let y_out y tid =
        List.fold_left
          (fun acc { Net.a_place; a_weight } -> acc + (y.(a_place) * a_weight))
          0
          (Net.transition net tid).Net.t_outputs
      in
      (* in-flight counts including only starts that actually consumed
         tokens: atomic (zero-duration) firings emit an empty start
         delta and move everything at the paired end delta. *)
      let deltas = Pnut_trace.Trace.deltas trace in
      let consuming = Hashtbl.create 64 in
      Array.iter
        (fun (d : Pnut_trace.Trace.delta) ->
          if d.Pnut_trace.Trace.d_kind = Pnut_trace.Trace.Fire_start
             && d.Pnut_trace.Trace.d_marking <> []
          then Hashtbl.replace consuming d.Pnut_trace.Trace.d_firing ())
        deltas;
      List.for_all
        (fun y ->
          let m = Array.copy (Pnut_trace.Trace.header trace).Pnut_trace.Trace.h_initial in
          let in_transit = ref 0 in
          let v0 = Incidence.weighted_sum y m in
          let ok = ref true in
          Array.iter
            (fun (d : Pnut_trace.Trace.delta) ->
              List.iter
                (fun (p, dm) -> m.(p) <- m.(p) + dm)
                d.Pnut_trace.Trace.d_marking;
              (if Hashtbl.mem consuming d.Pnut_trace.Trace.d_firing then
                 let w = y_out y d.Pnut_trace.Trace.d_transition in
                 match d.Pnut_trace.Trace.d_kind with
                 | Pnut_trace.Trace.Fire_start -> in_transit := !in_transit + w
                 | Pnut_trace.Trace.Fire_end -> in_transit := !in_transit - w);
              if Incidence.weighted_sum y m + !in_transit <> v0 then ok := false)
            deltas;
          !ok)
        invs)

let () =
  Alcotest.run "marking-incidence"
    [
      ( "marking",
        [
          Alcotest.test_case "basics" `Quick test_marking_basics;
          Alcotest.test_case "negative rejected" `Quick test_marking_negative_rejected;
          Alcotest.test_case "overflow rejected" `Quick
            test_marking_add_overflow;
          Alcotest.test_case "copy" `Quick test_marking_copy_equal;
          Alcotest.test_case "keys" `Quick test_marking_keys;
        ] );
      ( "incidence",
        [
          Alcotest.test_case "entries" `Quick test_incidence_entries;
          Alcotest.test_case "weights and self-loops" `Quick
            test_incidence_weights_and_selfloop;
          Alcotest.test_case "bus P-invariant" `Quick test_bus_p_invariant;
          Alcotest.test_case "bus T-invariant" `Quick test_bus_t_invariant;
          Alcotest.test_case "unbounded not covered" `Quick
            test_unbounded_net_not_covered;
          Alcotest.test_case "pipeline invariants" `Quick
            test_pipeline_invariants_conserved;
          Alcotest.test_case "pipeline T-invariants" `Quick
            test_pipeline_t_invariant_reproduces_marking;
          Alcotest.test_case "place bounds" `Quick test_place_bounds;
          Alcotest.test_case "vector rendering" `Quick test_pp_vector;
        ] );
      ( "relations",
        [
          Alcotest.test_case "bus conflicts/enablers" `Quick
            test_bus_relations;
          Alcotest.test_case "prefetch hand-checked sets" `Quick
            test_prefetch_relations;
          Alcotest.test_case "self-loops and inhibitors" `Quick
            test_relation_selfloop_and_inhibitor;
          Alcotest.test_case "full pipeline symmetry" `Quick
            test_full_pipeline_relations_symmetric;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_invariant_constant ]);
    ]
