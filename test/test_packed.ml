(* PR 7: the compact state store.  The packed builder must be
   invisible: same state numbering, same edge order, same truncation
   and budget behaviour as the boxed builder, on every class of net the
   codec handles — variable-free bounded nets (the zero-env fast
   path), env-bearing interpreted nets (the side table), nets with
   lying declared capacities and unbounded growth (the checked widen
   path), and frontiers forced through the disk spill. *)

module Net = Pnut_core.Net
module B = Net.Builder
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Graph = Pnut_reach.Graph
module Packed = Pnut_reach.Packed
module Store = Pnut_reach.Store
module Statekey = Pnut_reach.Statekey

let triples es =
  List.map
    (fun (e : Graph.edge) -> (e.Graph.e_from, e.Graph.e_transition, e.Graph.e_to))
    es

let summary g = Format.asprintf "%a" Graph.pp_summary g

(* Structural equality of two graphs, representation-blind: states with
   markings and environments, per-state successor and predecessor
   lists in order, the global edge list, and the printed summary
   (which additionally exercises deadlocks, safety, reversibility and
   dead transitions on both representations). *)
let graphs_equal ga gb =
  Graph.complete ga = Graph.complete gb
  && Graph.num_states ga = Graph.num_states gb
  && Graph.num_edges ga = Graph.num_edges gb
  && (let n = Graph.num_states ga in
      let ok = ref true in
      for i = 0 to n - 1 do
        let sa = Graph.state ga i and sb = Graph.state gb i in
        if sa.Graph.s_marking <> sb.Graph.s_marking then ok := false;
        if sa.Graph.s_env <> sb.Graph.s_env then ok := false;
        if triples (Graph.successors ga i) <> triples (Graph.successors gb i)
        then ok := false;
        if
          triples (Graph.predecessors ga i)
          <> triples (Graph.predecessors gb i)
        then ok := false
      done;
      !ok)
  && triples (Graph.edges ga) = triples (Graph.edges gb)
  && String.equal (summary ga) (summary gb)

(* -- fixed nets -- *)

let ring ?capacity ?(tokens = 4) () =
  let b = B.create "ring" in
  let ps =
    Array.init 5 (fun i ->
        B.add_place b
          (Printf.sprintf "p%d" i)
          ~initial:(if i = 0 then tokens else 0)
          ?capacity)
  in
  for i = 0 to 4 do
    ignore
      (B.add_transition b
         (Printf.sprintf "t%d" i)
         ~inputs:[ (ps.(i), 1) ]
         ~outputs:[ (ps.((i + 1) mod 5), 1) ]
        : Net.transition_id)
  done;
  B.build b

let counter_net () =
  (* env-bearing: the action path interns fresh environments *)
  let b = B.create "counter" ~variables:[ ("n", Value.Int 0) ] in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  ignore
    (B.add_transition b "bump" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ]
       ~action:[ Expr.Assign ("n", Expr.(var "n" + int 1)) ]
      : Net.transition_id);
  ignore
    (B.add_transition b "back" ~inputs:[ (q, 1) ] ~outputs:[ (p, 1) ]
       ~predicate:Expr.(var "n" < int 20)
      : Net.transition_id);
  B.build b

let pump_net () =
  (* q grows without bound: exercises the unknown-bound guess width and
     the widen path once q passes 15 *)
  let b = B.create "pump" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  ignore
    (B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1); (q, 1) ]
      : Net.transition_id);
  B.build b

let both ?max_states ?frontier_spill net =
  let boxed =
    Pnut_exec.Supervisor.value (Graph.build_supervised ?max_states net)
  in
  let packed =
    Pnut_exec.Supervisor.value
      (Graph.build_supervised ?max_states ~packed:true ?frontier_spill net)
  in
  (boxed, packed)

let check_identical ?max_states ?frontier_spill net () =
  let boxed, packed = both ?max_states ?frontier_spill net in
  Alcotest.(check bool) "packed graph equals boxed graph" true
    (graphs_equal boxed packed)

(* -- identity on fixed nets -- *)

let test_ring_identical = check_identical (ring ())
let test_counter_identical = check_identical (counter_net ())

let test_pump_widen_identical =
  (* truncation at the cap after q has outgrown the initial 4-bit
     field: the widen path must re-encode the arena mid-sweep *)
  check_identical ~max_states:400 (pump_net ())

let test_lying_capacity_identical () =
  (* capacities are declarative, not enforced at firing: the sink
     declares capacity 1 yet accumulates 5 tokens, so its 1-bit field
     overflows and the store must recover via widen *)
  let b = B.create "liar" in
  let p = B.add_place b "p" ~initial:5 ~capacity:5 in
  let s = B.add_place b "sink" ~capacity:1 in
  ignore
    (B.add_transition b "drain" ~inputs:[ (p, 1) ] ~outputs:[ (s, 1) ]
      : Net.transition_id);
  let net = B.build b in
  let boxed = Graph.build net in
  let packed = Graph.build ~packed:true net in
  Alcotest.(check int) "sink really exceeds its declared capacity" 5
    (Graph.bound packed 1);
  Alcotest.(check bool) "packed graph equals boxed graph" true
    (graphs_equal boxed packed)

let test_spill_identical =
  (* threshold 0 forces every full frontier chunk through the temp
     file; the graph must come out byte-identical *)
  check_identical ~frontier_spill:0 (ring ~tokens:6 ())

let test_budget_trip_identical () =
  (* a tripped state budget degrades both builders at the same point *)
  let net = ring ~tokens:6 () in
  let budget = { Pnut_exec.Budget.none with max_states = Some 50 } in
  let out_boxed = Graph.build_supervised ~budget net in
  let out_packed = Graph.build_supervised ~budget ~packed:true net in
  match (out_boxed, out_packed) with
  | ( Pnut_exec.Supervisor.Degraded { partial = gb; _ },
      Pnut_exec.Supervisor.Degraded { partial = gp; _ } ) ->
    Alcotest.(check bool) "partial graphs equal" true (graphs_equal gb gp)
  | _ -> Alcotest.fail "expected both builds to degrade at the state cap"

let test_bytes_per_state () =
  (* 17 tokens over 5 ring places: C(21,4) = 5985 states, enough for
     the fixed index floor to amortize below the 32-bytes/state target
     (one arena word per state for this net) *)
  let net = ring ~tokens:17 () in
  let boxed, packed = both ~max_states:10_000 net in
  Alcotest.(check bool) "boxed graph reports no packed footprint" true
    (Graph.packed_bytes_per_state boxed = None);
  match Graph.packed_bytes_per_state packed with
  | None -> Alcotest.fail "packed graph must report its footprint"
  | Some b ->
    Alcotest.(check bool)
      (Printf.sprintf "bytes/state %.1f within 32" b)
      true (b <= 32.0)

let test_bounds_known () =
  Alcotest.(check bool) "ring invariant gives bounds" true
    (Packed.bounds_known (ring ()));
  Alcotest.(check bool) "pump q is unbounded" false
    (Packed.bounds_known (pump_net ()))

(* -- the sharded parallel builder -- *)

(* [places]-place token ring with [tokens] tokens in place 0:
   C(tokens + places - 1, places - 1) reachable states, variable-free,
   with P-invariant bounds — the sharded builder's home turf. *)
let big_ring ~places ~tokens () =
  let b = B.create "bigring" in
  let ps =
    Array.init places (fun i ->
        B.add_place b
          (Printf.sprintf "r%d" i)
          ~initial:(if i = 0 then tokens else 0))
  in
  for i = 0 to places - 1 do
    ignore
      (B.add_transition b
         (Printf.sprintf "t%d" i)
         ~inputs:[ (ps.(i), 1) ]
         ~outputs:[ (ps.((i + 1) mod places), 1) ]
        : Net.transition_id)
  done;
  B.build b

(* Byte-for-byte equality of the packed stores' physical arrays —
   stronger than [graphs_equal]: the arena, the open-addressing index
   and both CSR arrays must be indistinguishable. *)
let arrays_identical ga gb =
  match (Graph.packed_arrays ga, Graph.packed_arrays gb) with
  | Some (a1, i1, o1, d1), Some (a2, i2, o2, d2) ->
    a1 = a2 && i1 = i2 && o1 = o2 && d1 = d2
  | _ -> false

let build_packed_jobs ?frontier_spill ~max_states ~jobs net =
  Pnut_exec.Supervisor.value
    (Graph.build_supervised ~max_states ~jobs ~packed:true ?frontier_spill net)

let test_sharded_equals_boxed () =
  let net = ring ~tokens:6 () in
  let boxed =
    Pnut_exec.Supervisor.value (Graph.build_supervised ~max_states:1000 net)
  in
  List.iter
    (fun jobs ->
      let packed = build_packed_jobs ~max_states:1000 ~jobs net in
      Alcotest.(check bool)
        (Printf.sprintf "sharded jobs=%d equals boxed" jobs)
        true (graphs_equal boxed packed))
    [ 2; 4 ]

let test_jobs_sweep_identity () =
  (* 9-place ring with 12 tokens: C(20,8) = 125,970 states — past the
     10^5 mark, so the sweep crosses many index growths, arena growths
     and cross-shard message bursts on every jobs value *)
  let net = big_ring ~places:9 ~tokens:12 () in
  let base = build_packed_jobs ~max_states:200_000 ~jobs:1 net in
  Alcotest.(check int) "expected state count" 125_970 (Graph.num_states base);
  Alcotest.(check bool) "complete" true (Graph.complete base);
  List.iter
    (fun jobs ->
      let g = build_packed_jobs ~max_states:200_000 ~jobs net in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d arrays byte-identical to serial" jobs)
        true (arrays_identical base g))
    [ 2; 4; 8 ]

let test_jobs_sweep_capped_identity () =
  (* under a states budget the degraded prefix must also be identical:
     the sharded builder aborts on the cap and rebuilds serially, which
     owns the exact truncation semantics *)
  let net = big_ring ~places:9 ~tokens:12 () in
  let build jobs =
    match
      Graph.build_supervised ~max_states:40_000 ~jobs ~packed:true net
    with
    | Pnut_exec.Supervisor.Degraded { partial; _ } -> partial
    | Pnut_exec.Supervisor.Complete _ ->
      Alcotest.fail "expected the state cap to trip"
  in
  let base = build 1 in
  Alcotest.(check int) "capped at the budget" 40_000 (Graph.num_states base);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d capped arrays byte-identical" jobs)
        true
        (arrays_identical base (build jobs)))
    [ 2; 4; 8 ]

(* -- spill-file lifetime -- *)

(* Run [f] with temp files redirected into a private directory, so the
   leak counts cannot race other tests or stale files in the shared
   temp dir. *)
let with_private_tmpdir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pnut-spill-test-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let old = Filename.get_temp_dir_name () in
  Filename.set_temp_dir_name dir;
  Fun.protect
    ~finally:(fun () ->
      Filename.set_temp_dir_name old;
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let spill_files dir =
  (try Sys.readdir dir with Sys_error _ -> [||])
  |> Array.to_list
  |> List.filter (fun f ->
         String.length f >= 13 && String.sub f 0 13 = "pnut-frontier")

let test_no_spill_file_leak () =
  with_private_tmpdir (fun dir ->
      (* widen mid-sweep (Field_overflow re-encodes the arena) plus cap
         truncation, with every chunk forced through the file *)
      ignore
        (build_packed_jobs ~frontier_spill:0 ~max_states:400 ~jobs:1
           (pump_net ())
          : Graph.t);
      Alcotest.(check (list string))
        "widen + truncation leaves no spill file" [] (spill_files dir);
      (* budget trip mid-drain: a pre-cancelled token fires at the first
         256-pop check, aborting the sweep while chunks sit on disk *)
      let tok = Pnut_exec.Budget.token () in
      Pnut_exec.Budget.cancel tok;
      (match
         Graph.build_supervised
           ~budget:(Pnut_exec.Budget.make ~cancel:tok ())
           ~packed:true ~frontier_spill:0 ~max_states:10_000
           (ring ~tokens:17 ())
       with
      | Pnut_exec.Supervisor.Degraded _ -> ()
      | Pnut_exec.Supervisor.Complete _ ->
        Alcotest.fail "expected the cancellation to trip");
      Alcotest.(check (list string))
        "budget trip mid-drain leaves no spill file" [] (spill_files dir))

let test_frontier_close_idempotent () =
  with_private_tmpdir (fun dir ->
      let f = Store.Frontier.create ~threshold:0 () in
      for i = 0 to 99 do
        Store.Frontier.push f i
      done;
      Alcotest.(check bool) "chunks spilled to disk" true
        (Store.Frontier.spilled_chunks f > 0);
      Alcotest.(check bool) "spill file exists while open" true
        (spill_files dir <> []);
      Store.Frontier.close f;
      Alcotest.(check (list string)) "close removes the file" []
        (spill_files dir);
      (* closing again must be a no-op, not an exception or a stray
         recreation *)
      Store.Frontier.close f;
      Alcotest.(check (list string)) "second close is a no-op" []
        (spill_files dir))

(* -- the frontier in isolation -- *)

let test_frontier_fifo_spill () =
  let f = Store.Frontier.create ~threshold:0 () in
  Fun.protect
    ~finally:(fun () -> Store.Frontier.close f)
    (fun () ->
      (* interleave pushes and pops the way the BFS does *)
      let next = ref 0 in
      for i = 0 to 9999 do
        Store.Frontier.push f i;
        if i land 3 = 0 then begin
          let v = Store.Frontier.pop f in
          Alcotest.(check int) "fifo order" !next v;
          incr next
        end
      done;
      Alcotest.(check bool) "threshold 0 spilled chunks to disk" true
        (Store.Frontier.spilled_chunks f > 0);
      while not (Store.Frontier.is_empty f) do
        let v = Store.Frontier.pop f in
        Alcotest.(check int) "fifo order" !next v;
        incr next
      done;
      Alcotest.(check int) "drained everything" 10000 !next)

(* -- side table -- *)

let test_intern_extra_clocks () =
  let net = counter_net () in
  let codec = Packed.create net in
  let env = Net.initial_env net in
  let a = Packed.intern_extra codec env in
  let b = Packed.intern_extra codec ~clocks:"t0@1.5" env in
  let c = Packed.intern_extra codec ~clocks:"t0@2.5" env in
  Alcotest.(check bool) "clock renderings distinguish ids" true
    (a <> b && b <> c && a <> c);
  Alcotest.(check int) "same pair, same id" a (Packed.intern_extra codec env);
  Alcotest.(check int) "same clocks, same id" b
    (Packed.intern_extra codec ~clocks:"t0@1.5" env);
  Alcotest.(check string) "key keeps the clocks" "t0@1.5"
    (Packed.extra_key codec b).Statekey.k_clocks

(* -- qcheck: codec round trip and key agreement -- *)

(* a net is only a carrier for the layout here: np places with the
   given bounds *)
let carrier_net bounds =
  let b = B.create "carrier" in
  Array.iteri
    (fun i _ ->
      ignore (B.add_place b (Printf.sprintf "p%d" i) : Net.place_id))
    bounds;
  ignore (B.add_transition b "t" : Net.transition_id);
  B.build b

let gen_bounds_and_markings =
  QCheck2.Gen.(
    let* np = int_range 1 12 in
    let* bounds = list_size (return np) (int_range 1 300) in
    let bounds = Array.of_list bounds in
    let gen_marking =
      Array.to_list bounds
      |> List.map (fun b -> int_range 0 b)
      |> flatten_l |> map Array.of_list
    in
    let* a = gen_marking in
    let* b = gen_marking in
    let* equal_pair = bool in
    return (bounds, a, (if equal_pair then Array.copy a else b)))

let prop_roundtrip_and_agreement =
  QCheck2.Test.make
    ~name:"packed encode/decode round-trips and agrees with key equality"
    ~count:300 gen_bounds_and_markings (fun (bounds, ma, mb) ->
      let net = carrier_net bounds in
      let codec =
        Packed.create ~bounds:(Array.map (fun b -> Some b) bounds) net
      in
      let lay = Packed.layout codec in
      let w = Packed.words lay in
      let buf = Array.make (2 * w) 0 in
      Packed.encode lay buf ~pos:0 ma ~extra:0;
      Packed.encode lay buf ~pos:w mb ~extra:0;
      let same_marking = ma = mb in
      Packed.decode lay buf ~pos:0 = ma
      && Packed.decode lay buf ~pos:w = mb
      && Packed.equal lay buf ~pos:0 buf w = same_marking
      && ((not same_marking)
         || Packed.hash lay buf ~pos:0 = Packed.hash lay buf ~pos:w))

(* -- qcheck: packed builder equals boxed builder on random
      interpreted nets (variables, tables, predicates, actions) -- *)

type spec = {
  sp_tokens : int list;
  sp_trans : ((int * int) list * (int * int) list * int * int) list;
      (* inputs, outputs, predicate code, action code *)
}

let gen_spec =
  QCheck2.Gen.(
    let* np = int_range 2 5 in
    let* tokens = list_size (return np) (int_range 0 3) in
    let tokens =
      if List.for_all (fun t -> t = 0) tokens then 2 :: List.tl tokens
      else tokens
    in
    let gen_arcs =
      list_size (int_range 1 2) (pair (int_range 0 (np - 1)) (int_range 1 2))
    in
    let gen_tr =
      let* inputs = gen_arcs in
      let* outputs = gen_arcs in
      let* p = int_range 0 3 in
      let* a = int_range 0 2 in
      return (inputs, outputs, p, a)
    in
    let* ntr = int_range 1 5 in
    let* sp_trans = list_size (return ntr) gen_tr in
    return { sp_tokens = tokens; sp_trans })

let emod a b = Expr.Binop (Expr.Mod, a, b)

let predicate_of_code = function
  | 1 -> Some Expr.(emod (var "n") (int 2) = int 0)
  | 2 -> Some Expr.(var "n" < int 15)
  | 3 -> Some Expr.(index "tbl" (emod (var "n") (int 3)) <= int 4)
  | _ -> None

let action_of_code = function
  | 1 -> [ Expr.Assign ("n", Expr.(var "n" + int 1)) ]
  | 2 ->
    [ Expr.Assign ("n", Expr.(var "n" + int 1));
      Expr.Table_assign
        ( "tbl",
          emod (Expr.var "n") (Expr.int 3),
          Expr.(index "tbl" (emod (var "n") (int 3)) + int 1) ) ]
  | _ -> []

let build_spec_net spec =
  let b =
    B.create "random"
      ~variables:[ ("n", Value.Int 0) ]
      ~tables:[ ("tbl", Array.make 3 (Value.Int 0)) ]
  in
  let np = List.length spec.sp_tokens in
  let places =
    List.mapi
      (fun i tokens -> B.add_place b (Printf.sprintf "p%d" i) ~initial:tokens)
      spec.sp_tokens
  in
  let arcs l =
    List.sort_uniq compare l
    |> List.map (fun (i, w) -> (List.nth places (i mod np), w))
    |> List.fold_left
         (fun acc (p, w) ->
           match acc with
           | (p', w') :: rest when p' = p -> (p, max w w') :: rest
           | _ -> (p, w) :: acc)
         []
    |> List.rev
  in
  List.iteri
    (fun ti (inputs, outputs, p, a) ->
      ignore
        (B.add_transition b
           (Printf.sprintf "t%d" ti)
           ~inputs:(arcs inputs) ~outputs:(arcs outputs)
           ?predicate:(predicate_of_code p) ~action:(action_of_code a)
          : Net.transition_id))
    spec.sp_trans;
  B.build b

(* random variable-free nets: arcs only, no predicates, no actions —
   these route through the sharded fast path when jobs > 1 *)
let build_varfree_net spec =
  let b = B.create "plain" in
  let np = List.length spec.sp_tokens in
  let places =
    List.mapi
      (fun i tokens -> B.add_place b (Printf.sprintf "p%d" i) ~initial:tokens)
      spec.sp_tokens
  in
  let arcs l =
    List.sort_uniq compare l
    |> List.map (fun (i, w) -> (List.nth places (i mod np), w))
    |> List.fold_left
         (fun acc (p, w) ->
           match acc with
           | (p', w') :: rest when p' = p -> (p, max w w') :: rest
           | _ -> (p, w) :: acc)
         []
    |> List.rev
  in
  List.iteri
    (fun ti (inputs, outputs, _, _) ->
      ignore
        (B.add_transition b
           (Printf.sprintf "t%d" ti)
           ~inputs:(arcs inputs) ~outputs:(arcs outputs)
          : Net.transition_id))
    spec.sp_trans;
  B.build b

let prop_sharded_equals_serial =
  QCheck2.Test.make
    ~name:"sharded packed builder equals serial on random variable-free nets"
    ~count:60 gen_spec (fun spec ->
      let net = build_varfree_net spec in
      let serial = build_packed_jobs ~max_states:2000 ~jobs:1 net in
      let sharded = build_packed_jobs ~max_states:2000 ~jobs:4 net in
      arrays_identical serial sharded && graphs_equal serial sharded)

let prop_packed_equals_boxed =
  QCheck2.Test.make
    ~name:"packed builder equals boxed builder on random interpreted nets"
    ~count:120 gen_spec (fun spec ->
      let net = build_spec_net spec in
      let cap = 300 in
      let boxed, packed = both ~max_states:cap net in
      graphs_equal boxed packed)

let prop_packed_spill_equals_boxed =
  QCheck2.Test.make
    ~name:"forced frontier spill changes nothing"
    ~count:40 gen_spec (fun spec ->
      let net = build_spec_net spec in
      let cap = 300 in
      let boxed, packed = both ~max_states:cap ~frontier_spill:0 net in
      graphs_equal boxed packed)

let () =
  Alcotest.run "packed"
    [
      ( "identity",
        [
          Alcotest.test_case "ring" `Quick test_ring_identical;
          Alcotest.test_case "counter env" `Quick test_counter_identical;
          Alcotest.test_case "pump widen + truncation" `Quick
            test_pump_widen_identical;
          Alcotest.test_case "lying capacity widen" `Quick
            test_lying_capacity_identical;
          Alcotest.test_case "forced spill" `Quick test_spill_identical;
          Alcotest.test_case "budget trip partial" `Quick
            test_budget_trip_identical;
          Alcotest.test_case "bytes per state" `Quick test_bytes_per_state;
          Alcotest.test_case "bounds known" `Quick test_bounds_known;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "equals boxed" `Quick test_sharded_equals_boxed;
          Alcotest.test_case "jobs sweep byte-identity (125k states)" `Slow
            test_jobs_sweep_identity;
          Alcotest.test_case "jobs sweep capped byte-identity" `Slow
            test_jobs_sweep_capped_identity;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "fifo + spill" `Quick test_frontier_fifo_spill;
          Alcotest.test_case "no spill-file leak on failures" `Quick
            test_no_spill_file_leak;
          Alcotest.test_case "close idempotent" `Quick
            test_frontier_close_idempotent;
        ] );
      ( "side table",
        [ Alcotest.test_case "env and clocks" `Quick test_intern_extra_clocks ]
      );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip_and_agreement;
          QCheck_alcotest.to_alcotest prop_packed_equals_boxed;
          QCheck_alcotest.to_alcotest prop_packed_spill_equals_boxed;
          QCheck_alcotest.to_alcotest prop_sharded_equals_serial;
        ] );
    ]
