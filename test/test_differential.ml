(* Differential harness: the optimized engine ([Simulator]) against the
   frozen straightforward engine ([Reference]) on randomly generated
   timed Petri nets.

   The optimized engine rebuilt the whole hot path — incremental
   fireable set, deadline heap, compiled predicates/delays/actions — so
   its correctness argument is this suite: on the same net and seed the
   two engines must produce byte-identical traces, equal outcomes,
   byte-identical checkpoints, and identical continuations after a
   restore.  The generator deliberately covers everything the compiler
   touches: arc weights above 1, inhibitors, every duration kind
   (including [Dynamic] expressions over mutable variables), enabling
   and firing delays, predicates, and table-writing actions. *)

module Net = Pnut_core.Net
module B = Net.Builder
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module Sim = Pnut_sim.Simulator
module Ref = Pnut_sim.Reference
module Checkpoint = Pnut_sim.Checkpoint
module Trace = Pnut_trace.Trace
module Codec = Pnut_trace.Codec

(* -- random net generation -- *)

type tr_spec = {
  ts_inputs : (int * int) list;      (* (place index, weight) *)
  ts_inhibitors : (int * int) list;  (* (place index, limit) *)
  ts_outputs : (int * int) list;
  ts_enabling : int;                 (* duration code *)
  ts_firing : int;
  ts_frequency : int;
  ts_predicate : int;                (* 0 = none *)
  ts_action : int;                   (* 0 = none *)
}

type spec = {
  sp_tokens : int list;  (* initial marking; length = number of places *)
  sp_trans : tr_spec list;
}

let gen_spec =
  QCheck2.Gen.(
    let* np = int_range 2 5 in
    let* tokens = list_size (return np) (int_range 0 3) in
    (* at least one token so something can happen *)
    let tokens =
      if List.for_all (fun t -> t = 0) tokens then 2 :: List.tl tokens
      else tokens
    in
    let gen_arcs lo hi =
      list_size (int_range lo hi) (pair (int_range 0 (np - 1)) (int_range 1 2))
    in
    let gen_tr =
      let* ts_inputs = gen_arcs 1 2 in
      let* ts_inhibitors =
        (* inhibitors on a quarter of the transitions *)
        let* with_inh = int_range 0 3 in
        if with_inh = 0 then gen_arcs 1 1 else return []
      in
      let* ts_outputs = gen_arcs 1 2 in
      let* ts_enabling = int_range 0 6 in
      let* ts_firing = int_range 0 6 in
      let* ts_frequency = int_range 1 3 in
      let* ts_predicate = int_range 0 5 in   (* none in 2/6 of cases *)
      let* ts_action = int_range 0 3 in
      return
        { ts_inputs; ts_inhibitors; ts_outputs; ts_enabling; ts_firing;
          ts_frequency; ts_predicate; ts_action }
    in
    let* ntr = int_range 1 6 in
    let* sp_trans = list_size (return ntr) gen_tr in
    return { sp_tokens = tokens; sp_trans })

let emod a b = Expr.Binop (Expr.Mod, a, b)

let duration_of_code = function
  | 0 -> Net.Zero
  | 1 -> Net.Const 1.0
  | 2 -> Net.Const 2.5
  | 3 -> Net.Uniform (0.5, 2.0)
  | 4 -> Net.Exponential 1.5
  | 5 -> Net.Choice [ (1.0, 1.0); (2.0, 2.0); (0.5, 1.0) ]
  | _ -> Net.Dynamic Expr.(int 1 + emod (var "counter") (int 3))

let predicate_of_code = function
  | 1 -> Some Expr.(emod (var "counter") (int 2) = int 0)
  | 2 -> Some Expr.(var "counter" < int 25)
  | 3 -> Some Expr.(index "tbl" (emod (var "counter") (int 4)) <= int 6)
  | _ -> None  (* codes 0, 4, 5: no predicate *)

let action_of_code = function
  | 1 -> [ Expr.Assign ("counter", Expr.(var "counter" + int 1)) ]
  | 2 ->
    (* the second statement sees the first one's write, in both engines *)
    [ Expr.Assign ("counter", Expr.(var "counter" + int 1));
      Expr.Table_assign
        ( "tbl",
          emod (Expr.var "counter") (Expr.int 4),
          Expr.(index "tbl" (emod (var "counter") (int 4)) + int 1) ) ]
  | 3 -> [ Expr.Table_assign ("tbl", Expr.int 0, Expr.(index "tbl" (int 0) + int 1)) ]
  | _ -> []

let build_net spec =
  let b =
    B.create "differential"
      ~variables:[ ("counter", Value.Int 0) ]
      ~tables:[ ("tbl", Array.make 4 (Value.Int 0)) ]
  in
  let np = List.length spec.sp_tokens in
  let places =
    List.mapi
      (fun i tokens -> B.add_place b (Printf.sprintf "p%d" i) ~initial:tokens)
      spec.sp_tokens
  in
  let arcs l =
    (* one arc per place: keep the heaviest requirement *)
    List.sort_uniq compare l
    |> List.map (fun (i, w) -> (List.nth places (i mod np), w))
    |> List.fold_left
         (fun acc (p, w) ->
           match acc with
           | (p', w') :: rest when p' = p -> (p, max w w') :: rest
           | _ -> (p, w) :: acc)
         []
    |> List.rev
  in
  List.iteri
    (fun ti ts ->
      ignore
        (B.add_transition b
           (Printf.sprintf "t%d" ti)
           ~inputs:(arcs ts.ts_inputs)
           ~inhibitors:(arcs ts.ts_inhibitors)
           ~outputs:(arcs ts.ts_outputs)
           ~enabling:(duration_of_code ts.ts_enabling)
           ~firing:(duration_of_code ts.ts_firing)
           ~frequency:(float_of_int ts.ts_frequency)
           ?predicate:(predicate_of_code ts.ts_predicate)
           ~action:(action_of_code ts.ts_action)
          : Net.transition_id))
    spec.sp_trans;
  B.build b

(* -- running either engine to a comparable result --

   A run is its rendered trace plus its ending: a normal outcome, or the
   message of the structured error it raised.  Zero-delay token loops in
   generated nets legitimately hit the livelock guard; then the engines
   must agree on the error and on the partial trace up to it. *)

let horizon = 50.0
let cap = 200  (* low max_instant_firings: fail livelocked nets fast *)

(* Token-multiplying nets (one input arc, weight-2 outputs) grow their
   event rate exponentially, so every run is also event-bounded. *)
let event_cap = 2_000

let run_ref ~seed net =
  let sink, get = Trace.collector () in
  let st = Ref.create ~seed ~max_instant_firings:cap ~sink net in
  let result =
    match Ref.run ~until:horizon ~max_events:event_cap st with
    | o -> Ok o
    | exception Sim.Sim_error e ->
      (* an aborted run never emits on_finish; close the collector so
         the partial traces can be compared *)
      sink.Trace.on_finish (Ref.clock st);
      Error (Sim.error_message e)
  in
  (result, Codec.to_string (get ()))

let run_fast ~seed net =
  let sink, get = Trace.collector () in
  let st = Sim.create ~seed ~max_instant_firings:cap ~sink net in
  let result =
    match Sim.run ~until:horizon ~max_events:event_cap st with
    | o -> Ok o
    | exception Sim.Sim_error e ->
      sink.Trace.on_finish (Sim.clock st);
      Error (Sim.error_message e)
  in
  (result, Codec.to_string (get ()))

let prop_traces_identical =
  QCheck2.Test.make
    ~name:"optimized and reference engines produce identical traces"
    ~count:300 gen_spec (fun spec ->
      let net = build_net spec in
      List.for_all
        (fun seed ->
          let r_res, r_trace = run_ref ~seed net in
          let f_res, f_trace = run_fast ~seed net in
          r_res = f_res && String.equal r_trace f_trace)
        [ 1; 7; 42 ])

let prop_step_matches_run =
  (* the micro-step API drives the same engine internals in a different
     order (peek, manual advance); stepping to quiescence must visit the
     same states as [run] *)
  QCheck2.Test.make ~name:"stepping the two engines agrees event by event"
    ~count:150 gen_spec (fun spec ->
      let net = build_net spec in
      let sr = Ref.create ~seed:11 ~max_instant_firings:cap net in
      let sf = Sim.create ~seed:11 ~max_instant_firings:cap net in
      let ok = ref true in
      (try
         let continue = ref true in
         let steps = ref 0 in
         while !continue && !steps < 400 do
           incr steps;
           let a = Ref.step sr in
           let b = Sim.step sf in
           if a <> b then begin
             ok := false;
             continue := false
           end;
           if Ref.clock sr > horizon || a = Sim.Quiescent then continue := false
         done
       with Sim.Sim_error _ -> ());
      !ok
      && Ref.clock sr = Sim.clock sf
      && Pnut_core.Marking.equal (Ref.marking sr) (Sim.marking sf))

let prop_checkpoints_identical =
  QCheck2.Test.make
    ~name:"mid-run checkpoints of the two engines are byte-identical"
    ~count:150 gen_spec (fun spec ->
      let net = build_net spec in
      let seed = 5 in
      let sr = Ref.create ~seed ~max_instant_firings:cap net in
      let sf = Sim.create ~seed ~max_instant_firings:cap net in
      match
        ( Ref.run ~until:(horizon /. 2.0) ~max_events:event_cap ~finish:false
            sr,
          Sim.run ~until:(horizon /. 2.0) ~max_events:event_cap ~finish:false
            sf )
      with
      | exception Sim.Sim_error _ -> true (* covered by the trace property *)
      | _, _ ->
        String.equal
          (Checkpoint.to_string (Ref.checkpoint sr))
          (Checkpoint.to_string (Sim.checkpoint sf)))

let prop_restored_runs_identical =
  (* a checkpoint from either engine restores into either engine, and
     every combination replays the identical suffix *)
  QCheck2.Test.make
    ~name:"restored engines continue with identical trace suffixes"
    ~count:150 gen_spec (fun spec ->
      let net = build_net spec in
      let seed = 23 in
      let sr = Ref.create ~seed ~max_instant_firings:cap net in
      match
        Ref.run ~until:(horizon /. 2.0) ~max_events:event_cap ~finish:false sr
      with
      | exception Sim.Sim_error _ -> true
      | _ ->
        let ck = Ref.checkpoint sr in
        let resume_ref () =
          let sink, get = Trace.collector () in
          let st = Ref.restore ~sink ~max_instant_firings:cap net ck in
          let result =
            match Ref.run ~until:horizon ~max_events:event_cap st with
            | o -> Ok o
            | exception Sim.Sim_error e ->
              sink.Trace.on_finish (Ref.clock st);
              Error (Sim.error_message e)
          in
          (result, Codec.to_string (get ()))
        in
        let resume_fast () =
          let sink, get = Trace.collector () in
          let st = Sim.restore ~sink ~max_instant_firings:cap net ck in
          let result =
            match Sim.run ~until:horizon ~max_events:event_cap st with
            | o -> Ok o
            | exception Sim.Sim_error e ->
              sink.Trace.on_finish (Sim.clock st);
              Error (Sim.error_message e)
          in
          (result, Codec.to_string (get ()))
        in
        let r_res, r_trace = resume_ref () in
        let f_res, f_trace = resume_fast () in
        r_res = f_res && String.equal r_trace f_trace)

let prop_fireable_sets_agree =
  (* the incremental ready set must equal the full rescan at every
     instant, including after perturbations outside any transition *)
  QCheck2.Test.make
    ~name:"incremental fireable set equals the reference rescan" ~count:150
    gen_spec (fun spec ->
      let net = build_net spec in
      let sr = Ref.create ~seed:3 ~max_instant_firings:cap net in
      let sf = Sim.create ~seed:3 ~max_instant_firings:cap net in
      let ok = ref true in
      (try
         for i = 0 to 60 do
           if Ref.fireable_transitions sr <> Sim.fireable_transitions sf then
             ok := false;
           if i mod 20 = 19 then begin
             (* kick both markings identically, outside any firing *)
             let p = i mod Net.num_places net in
             ignore (Ref.perturb_tokens sr p 1 : int);
             ignore (Sim.perturb_tokens sf p 1 : int)
           end;
           match (Ref.step sr, Sim.step sf) with
           | Sim.Quiescent, Sim.Quiescent -> raise Exit
           | a, b -> if a <> b then ok := false
         done
       with
      | Exit -> ()
      | Sim.Sim_error _ -> ());
      !ok)

(* -- replications through the pool: run-order determinism -- *)

let test_replications_jobs_deterministic () =
  let net = build_net { sp_tokens = [ 2; 1; 0 ];
                        sp_trans =
                          [ { ts_inputs = [ (0, 1) ]; ts_inhibitors = [];
                              ts_outputs = [ (1, 1) ]; ts_enabling = 1;
                              ts_firing = 3; ts_frequency = 1;
                              ts_predicate = 0; ts_action = 1 };
                            { ts_inputs = [ (1, 1) ]; ts_inhibitors = [];
                              ts_outputs = [ (0, 1); (2, 1) ]; ts_enabling = 4;
                              ts_firing = 1; ts_frequency = 2;
                              ts_predicate = 0; ts_action = 0 } ] }
  in
  let gather jobs =
    (* collectors mutate shared per-run slots: exactly the sink shape
       [replications] must keep safe by pre-creating sinks in run order *)
    let traces = Array.make 6 "" in
    let outcomes =
      Sim.replications ~seed:9 ~jobs ~runs:6 ~until:100.0 net (fun i ->
          let sink, get = Trace.collector () in
          let wrap = { sink with
                       Trace.on_finish = (fun t ->
                           sink.Trace.on_finish t;
                           traces.(i) <- Codec.to_string (get ())) }
          in
          wrap)
    in
    (outcomes, Array.to_list traces)
  in
  let serial = gather 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d replications bit-identical" jobs)
        true
        (gather jobs = serial))
    [ 2; 4 ]

let () =
  Alcotest.run "differential"
    [
      ( "engines",
        [
          QCheck_alcotest.to_alcotest prop_traces_identical;
          QCheck_alcotest.to_alcotest prop_step_matches_run;
          QCheck_alcotest.to_alcotest prop_checkpoints_identical;
          QCheck_alcotest.to_alcotest prop_restored_runs_identical;
          QCheck_alcotest.to_alcotest prop_fireable_sets_agree;
        ] );
      ( "replications",
        [
          Alcotest.test_case "pool run-order determinism" `Quick
            test_replications_jobs_deterministic;
        ] );
    ]
