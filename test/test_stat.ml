(* Tests for the statistical analysis tool, against hand-computed
   time-weighted statistics on synthetic traces. *)

module Trace = Pnut_trace.Trace
module Stat = Pnut_stat.Stat
module Value = Pnut_core.Value

let header =
  {
    Trace.h_net = "stats";
    h_places = [| "p"; "q" |];
    h_transitions = [| "t" |];
    h_initial = [| 1; 0 |];
    h_variables = [];
  }

let delta time kind marking =
  {
    Trace.d_time = time;
    d_kind = kind;
    d_transition = 0;
    d_firing = 0;
    d_marking = marking;
    d_env = [];
  }

(* p: 1 for t in [0,4), 0 for [4,10)  ->  avg 0.4
   q: 0 for [0,4), 2 for [4,10)       ->  avg 1.2
   t: one firing from 2 to 4          ->  avg concurrency 0.2 *)
let simple_trace () =
  Trace.make header
    [
      delta 2.0 Trace.Fire_start [];
      delta 4.0 Trace.Fire_end [ (0, -1); (1, 2) ];
    ]
    10.0

let test_run_statistics () =
  let r = Stat.of_trace ~run:7 (simple_trace ()) in
  Alcotest.(check int) "run number" 7 r.Stat.run_number;
  Alcotest.(check (float 0.0)) "length" 10.0 r.Stat.length;
  Alcotest.(check int) "started" 1 r.Stat.events_started;
  Alcotest.(check int) "finished" 1 r.Stat.events_finished

let test_place_averages () =
  let r = Stat.of_trace (simple_trace ()) in
  let p = Stat.place r "p" in
  Testutil.check_close "p avg" 0.4 p.Stat.ps_avg;
  Alcotest.(check int) "p min" 0 p.Stat.ps_min;
  Alcotest.(check int) "p max" 1 p.Stat.ps_max;
  Alcotest.(check int) "p final" 0 p.Stat.ps_final;
  (* stddev of a 0/1 signal with mean .4: sqrt(.4 - .16) = sqrt(.24) *)
  Testutil.check_close ~tolerance:1e-9 "p stddev" (sqrt 0.24) p.Stat.ps_stddev;
  let q = Stat.place r "q" in
  Testutil.check_close "q avg" 1.2 q.Stat.ps_avg;
  Alcotest.(check int) "q max" 2 q.Stat.ps_max;
  (* E[q^2] = 4 * 0.6 = 2.4; var = 2.4 - 1.44 = 0.96 *)
  Testutil.check_close "q stddev" (sqrt 0.96) q.Stat.ps_stddev

let test_transition_statistics () =
  let r = Stat.of_trace (simple_trace ()) in
  let t = Stat.transition r "t" in
  Testutil.check_close "avg concurrency" 0.2 t.Stat.ts_avg;
  Alcotest.(check int) "max concurrency" 1 t.Stat.ts_max;
  Alcotest.(check int) "starts" 1 t.Stat.ts_starts;
  Alcotest.(check int) "ends" 1 t.Stat.ts_ends;
  Testutil.check_close "throughput" 0.1 t.Stat.ts_throughput

let test_lookup_missing () =
  let r = Stat.of_trace (simple_trace ()) in
  Alcotest.check_raises "no such place" Not_found (fun () ->
      ignore (Stat.place r "nope"));
  Alcotest.check_raises "no such transition" Not_found (fun () ->
      ignore (Stat.transition r "nope"))

let test_utilization_and_throughput_helpers () =
  let r = Stat.of_trace (simple_trace ()) in
  Testutil.check_close "utilization" 0.4 (Stat.utilization r "p");
  Testutil.check_close "throughput helper" 0.1 (Stat.throughput r "t")

let test_incomplete_raises () =
  let sink, get = Stat.sink () in
  sink.Trace.on_header header;
  Alcotest.check_raises "not finished"
    (Invalid_argument "Stat: trace not finished") (fun () -> ignore (get ()))

let test_zero_length_run () =
  let tr = Trace.make header [] 0.0 in
  let r = Stat.of_trace tr in
  Alcotest.(check (float 0.0)) "zero length" 0.0 r.Stat.length;
  Alcotest.(check (float 0.0)) "no div-by-zero" 0.0 (Stat.utilization r "p")

let test_concurrent_firings () =
  (* two overlapping firings: concurrency 2 during [1,2) *)
  let tr =
    Trace.make header
      [
        delta 0.0 Trace.Fire_start [];
        delta 1.0 Trace.Fire_start [];
        delta 2.0 Trace.Fire_end [];
        delta 3.0 Trace.Fire_end [];
      ]
      4.0
  in
  let t = Stat.transition (Stat.of_trace tr) "t" in
  Alcotest.(check int) "max 2" 2 t.Stat.ts_max;
  (* 1 during [0,1), 2 during [1,2), 1 during [2,3), 0 during [3,4) -> 1.0 *)
  Testutil.check_close "avg 1.0" 1.0 t.Stat.ts_avg;
  Testutil.check_close "throughput 0.5" 0.5 t.Stat.ts_throughput

let test_render_layout () =
  let r = Stat.of_trace ~run:1 (simple_trace ()) in
  let text = Stat.render r in
  List.iter
    (fun needle -> Testutil.check_contains "report" text needle)
    [
      "RUN STATISTICS"; "EVENT STATISTICS"; "PLACE STATISTICS";
      "Run number"; "Length of Simulation 10"; "Events started       1";
      "Throughput"; "Min/Max";
    ]

let test_render_golden () =
  (* the exact Figure-5 layout on a fixed synthetic trace: format
     stability matters for downstream text-processing (the paper pipes
     stat output into tbl/troff) *)
  let r = Stat.of_trace ~run:1 (simple_trace ()) in
  let expected =
    String.concat "\n"
      [
        "RUN STATISTICS";
        "Run number           1";
        "Initial clock value  0";
        "Length of Simulation 10";
        "Events started       1";
        "Events finished      1";
        "";
        "EVENT STATISTICS";
        "Run number 1";
        "Transition  Min/Max  Avg     Standard  Starts  Throughput";
        "t               0/1  0.2000    0.4000     1/1      0.1000";
        "";
        "PLACE STATISTICS";
        "Run number 1";
        "Place  Min/Max  Avg     Standard";
        "p          0/1  0.4000    0.4899";
        "q          0/2  1.2000    0.9798";
        "";
      ]
  in
  Alcotest.(check string) "exact layout" expected (Stat.render r)

let test_render_tsv () =
  let r = Stat.of_trace (simple_trace ()) in
  let tsv = Stat.render_tsv r in
  Testutil.check_contains "tsv transition line" tsv "transition\tt\t";
  Testutil.check_contains "tsv place line" tsv "place\tp\t";
  (* every line has a stable field count *)
  String.split_on_char '\n' tsv
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         let fields = List.length (String.split_on_char '\t' line) in
         Alcotest.(check bool) "field count" true (fields >= 7))

let test_time_regression_rejected () =
  (* regression: decreasing timestamps used to be silently skipped,
     quietly corrupting every time-weighted average *)
  let tr =
    Trace.make header
      [ delta 5.0 Trace.Fire_start []; delta 3.0 Trace.Fire_end [] ]
      10.0
  in
  (match Stat.of_trace tr with
  | _ -> Alcotest.fail "expected Stat_error"
  | exception Stat.Stat_error (Stat.Time_regression { at; prev }) ->
    Alcotest.(check (float 0.0)) "offending time" 3.0 at;
    Alcotest.(check (float 0.0)) "previous clock" 5.0 prev);
  Testutil.check_contains "message names the times"
    (Stat.error_message (Stat.Time_regression { at = 3.0; prev = 5.0 }))
    "went backwards";
  (* equal timestamps (simultaneous events) remain fine *)
  let ok =
    Trace.make header
      [ delta 2.0 Trace.Fire_start []; delta 2.0 Trace.Fire_end [] ]
      10.0
  in
  Alcotest.(check int) "simultaneous ok" 1 (Stat.of_trace ok).Stat.events_started

let test_streaming_matches_materialized () =
  (* the Figure-5 trace, consumed once through the streaming sink and
     once materialized: reports must be byte-identical *)
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let sink, get = Stat.sink () in
  let _ = Pnut_sim.Simulator.simulate ~seed:42 ~until:10000.0 ~sink net in
  let streamed = get () in
  let tr, _ = Pnut_sim.Simulator.trace ~seed:42 ~until:10000.0 net in
  let materialized = Stat.of_trace tr in
  Alcotest.(check string) "identical reports" (Stat.render_tsv materialized)
    (Stat.render_tsv streamed);
  (* and through a serialized round trip in each codec *)
  let from_text = Stat.of_trace (Pnut_trace.Codec.parse (Pnut_trace.Codec.to_string tr)) in
  let from_bin = Stat.of_trace (Pnut_trace.Binary.parse (Pnut_trace.Binary.to_string tr)) in
  Alcotest.(check string) "text codec preserves stats"
    (Stat.render_tsv materialized) (Stat.render_tsv from_text);
  Alcotest.(check string) "binary codec preserves stats"
    (Stat.render_tsv materialized) (Stat.render_tsv from_bin)

(* property: place averages always lie within [min, max] *)
let prop_avg_bounded =
  QCheck2.Test.make ~name:"avg within min/max" ~count:50
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
      let sink, get = Stat.sink () in
      let _ = Pnut_sim.Simulator.simulate ~seed ~until:200.0 ~sink net in
      let r = get () in
      Array.for_all
        (fun p ->
          p.Stat.ps_avg >= float_of_int p.Stat.ps_min -. 1e-9
          && p.Stat.ps_avg <= float_of_int p.Stat.ps_max +. 1e-9
          && p.Stat.ps_stddev >= 0.0)
        r.Stat.places
      && Array.for_all
           (fun t ->
             t.Stat.ts_starts >= t.Stat.ts_ends
             && t.Stat.ts_avg >= float_of_int t.Stat.ts_min -. 1e-9
             && t.Stat.ts_avg <= float_of_int t.Stat.ts_max +. 1e-9)
           r.Stat.transitions)

let () =
  Alcotest.run "stat"
    [
      ( "unit",
        [
          Alcotest.test_case "run statistics" `Quick test_run_statistics;
          Alcotest.test_case "place averages" `Quick test_place_averages;
          Alcotest.test_case "transition statistics" `Quick test_transition_statistics;
          Alcotest.test_case "missing lookups" `Quick test_lookup_missing;
          Alcotest.test_case "helpers" `Quick test_utilization_and_throughput_helpers;
          Alcotest.test_case "incomplete trace" `Quick test_incomplete_raises;
          Alcotest.test_case "zero-length run" `Quick test_zero_length_run;
          Alcotest.test_case "concurrent firings" `Quick test_concurrent_firings;
          Alcotest.test_case "report layout" `Quick test_render_layout;
          Alcotest.test_case "golden format" `Quick test_render_golden;
          Alcotest.test_case "tsv layout" `Quick test_render_tsv;
          Alcotest.test_case "time regression rejected" `Quick
            test_time_regression_rejected;
          Alcotest.test_case "streaming = materialized" `Quick
            test_streaming_matches_materialized;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_avg_bounded ]);
    ]
