(* Tests for timed reachability: the state-class graph (Timed) and the
   frozen explicit-expansion oracle (Timed_explicit). *)

module Net = Pnut_core.Net
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module B = Net.Builder
module Timed = Pnut_reach.Timed
module Tx = Pnut_reach.Timed_explicit

let one_shot ~firing ~enabling =
  let b = B.create "oneshot" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let t = B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ] ~firing ~enabling in
  (B.build b, p, q, t)

(* -- state-class graph -- *)

let test_firing_time_states () =
  let net, _, q, t = one_shot ~firing:(Net.Const 2.0) ~enabling:Net.Zero in
  let g = Timed.build net in
  Alcotest.(check bool) "complete" true (Timed.complete g);
  (* classes: initial -> in flight -> done; the oracle's interpolated
     tick state collapses into the Complete edge *)
  Alcotest.(check int) "three classes" 3 (Timed.num_states g);
  Alcotest.(check int) "one deadlock" 1 (List.length (Timed.deadlocks g));
  Alcotest.(check int) "q bound" 1 (Timed.max_tokens g q);
  Alcotest.(check (option (float 0.0))) "t fires at 0" (Some 0.0)
    (Timed.min_cycle_time net t)

let test_enabling_time_states () =
  let net, _, _, t = one_shot ~firing:Net.Zero ~enabling:(Net.Const 3.0) in
  let g = Timed.build net in
  (* the leading wait normalizes away: pending at 0 in the initial class *)
  Alcotest.(check int) "two classes" 2 (Timed.num_states g);
  Alcotest.(check (option (float 0.0))) "t fires at 3" (Some 3.0)
    (Timed.min_cycle_time net t);
  Alcotest.(check int) "deadlocked at end" 1 (List.length (Timed.deadlocks g))

let test_conflict_branches () =
  (* two instant transitions compete: the graph must contain BOTH
     choices (the simulator picks probabilistically; the graph covers
     all) *)
  let b = B.create "branch" in
  let p = B.add_place b "p" ~initial:1 in
  let l = B.add_place b "l" in
  let r = B.add_place b "r" in
  let tl = B.add_transition b "left" ~inputs:[ (p, 1) ] ~outputs:[ (l, 1) ] in
  let tr_ = B.add_transition b "right" ~inputs:[ (p, 1) ] ~outputs:[ (r, 1) ] in
  let net = B.build b in
  let g = Timed.build net in
  let initial_succ = Timed.successors g 0 in
  Alcotest.(check int) "two branches" 2 (List.length initial_succ);
  let labels =
    List.map (fun e -> e.Timed.e_label) initial_succ
    |> List.sort compare
  in
  Alcotest.(check bool) "both fire labels" true
    (labels = [ Timed.Fire tl; Timed.Fire tr_ ] || labels = [ Timed.Fire tr_; Timed.Fire tl ])

let test_interval_domains () =
  (* enabling delays 2 and 5 pending together: the initial class's
     normalized domain pins 'fast' at 0 and 'slow' at 3 *)
  let b = B.create "mintick" in
  let p = B.add_place b "p" ~initial:2 in
  let x = B.add_place b "x" in
  let y = B.add_place b "y" in
  let fast =
    B.add_transition b "fast" ~inputs:[ (p, 1) ] ~outputs:[ (x, 1) ]
      ~enabling:(Net.Const 2.0)
  in
  let slow =
    B.add_transition b "slow" ~inputs:[ (p, 1) ] ~outputs:[ (y, 1) ]
      ~enabling:(Net.Const 5.0)
  in
  let net = B.build b in
  let g = Timed.build net in
  let s0 = Timed.state g (Timed.initial g) in
  Alcotest.(check (list int)) "both pending" [ fast; slow ] s0.Timed.ts_pending;
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "normalized domain" [ (0.0, 0.0); (3.0, 3.0) ]
    s0.Timed.ts_pending_iv;
  (* and the whole-graph domain arrays agree with the per-class view *)
  let off, sup, lo, hi = Timed.domain_arrays g in
  Alcotest.(check int) "two slots for class 0" 2 (off.(1) - off.(0));
  Alcotest.(check int) "slow's enabling slot" ((2 * slow) + 1) sup.(1);
  Alcotest.(check (float 0.0)) "slow lo" 3.0 lo.(1);
  Alcotest.(check (float 0.0)) "slow hi" 3.0 hi.(1)

let test_residual_enabling_preserved () =
  (* 'slow' (enabling 5) stays continuously enabled across 'fast' events
     that do not touch its tokens: it must fire at exactly 5, not 5 +
     restarts. *)
  let b = B.create "keepalive" in
  let p = B.add_place b "p" ~initial:1 in
  let other = B.add_place b "other" ~initial:1 in
  let sunk = B.add_place b "sunk" in
  let out = B.add_place b "out" in
  let _ =
    B.add_transition b "fast" ~inputs:[ (other, 1) ] ~outputs:[ (sunk, 1) ]
      ~enabling:(Net.Const 2.0)
  in
  let slow =
    B.add_transition b "slow" ~inputs:[ (p, 1) ] ~outputs:[ (out, 1) ]
      ~enabling:(Net.Const 5.0)
  in
  let net = B.build b in
  Alcotest.(check (option (float 0.0))) "slow at 5 despite fast at 2" (Some 5.0)
    (Timed.min_cycle_time net slow)

let test_stochastic_rejected () =
  let net, _, _, _ = one_shot ~firing:(Net.Exponential 1.0) ~enabling:Net.Zero in
  Alcotest.check_raises "exponential rejected"
    (Invalid_argument "Reach.Timed: stochastic firing time on transition t")
    (fun () -> ignore (Timed.build net));
  let net2, _, _, _ =
    one_shot ~firing:Net.Zero ~enabling:(Net.Choice [ (1.0, 1.0); (2.0, 1.0) ])
  in
  Alcotest.check_raises "spread choice rejected"
    (Invalid_argument "Reach.Timed: stochastic enabling time on transition t")
    (fun () -> ignore (Timed.build net2))

let test_degenerate_durations_accepted () =
  let net, _, _, t =
    one_shot ~firing:(Net.Uniform (2.0, 2.0))
      ~enabling:(Net.Choice [ (3.0, 1.0); (3.0, 5.0) ])
  in
  Alcotest.(check (option (float 0.0))) "enabling 3 then firing" (Some 3.0)
    (Timed.min_cycle_time net t)

let test_interpreted_timed () =
  (* dynamic deterministic duration from a variable *)
  let b = B.create "dyn" ~variables:[ ("d", Value.Int 4) ] in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let t =
    B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ]
      ~enabling:(Net.Dynamic (Expr.var "d"))
  in
  let net = B.build b in
  Alcotest.(check (option (float 0.0))) "dynamic delay honoured" (Some 4.0)
    (Timed.min_cycle_time net t)

let test_never_fires () =
  let b = B.create "never" in
  let p = B.add_place b "p" in
  let q = B.add_place b "q" in
  let t = B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ] in
  let _ = B.add_place b "tok" in
  let net = B.build b in
  Alcotest.(check (option (float 0.0))) "unreachable firing" None
    (Timed.min_cycle_time net t)

let three_stage () =
  let b = B.create "3stage" in
  let a = B.add_place b "a" ~initial:1 in
  let bb = B.add_place b "b" in
  let c = B.add_place b "c" in
  let d = B.add_place b "d" in
  let _ = B.add_transition b "s1" ~inputs:[ (a, 1) ] ~outputs:[ (bb, 1) ] ~firing:(Net.Const 2.0) in
  let _ = B.add_transition b "s2" ~inputs:[ (bb, 1) ] ~outputs:[ (c, 1) ] ~enabling:(Net.Const 3.0) in
  let s3 = B.add_transition b "s3" ~inputs:[ (c, 1) ] ~outputs:[ (d, 1) ] ~firing:(Net.Const 1.0) in
  (B.build b, s3)

let test_agreement_with_simulator () =
  (* For a deterministic linear net, the simulator's event times must
     agree with the vector-space search: end-to-end latency of a 3-stage
     deterministic pipeline is the same in both. *)
  let net, s3 = three_stage () in
  Alcotest.(check (option (float 0.0))) "s3 starts at 5" (Some 5.0)
    (Timed.min_cycle_time net s3);
  let trace, _ = Pnut_sim.Simulator.trace ~until:100.0 net in
  let s3_starts =
    Array.to_list (Pnut_trace.Trace.deltas trace)
    |> List.filter (fun d ->
           d.Pnut_trace.Trace.d_kind = Pnut_trace.Trace.Fire_start
           && d.Pnut_trace.Trace.d_transition = s3)
    |> List.map (fun d -> d.Pnut_trace.Trace.d_time)
  in
  Alcotest.(check (list (float 0.0))) "simulator agrees" [ 5.0 ] s3_starts

let test_packed_build () =
  let net, _ = three_stage () in
  let boxed = Timed.build net in
  let packed = Timed.build ~packed:true net in
  Alcotest.(check bool) "packed is packed" true
    (Timed.packed_bytes_per_state packed <> None);
  Alcotest.(check int) "same classes" (Timed.num_states boxed)
    (Timed.num_states packed);
  Alcotest.(check int) "same edges" (Timed.num_edges boxed)
    (Timed.num_edges packed);
  let digest g =
    List.init (Timed.num_states g) (fun i ->
        let s = Timed.state g i in
        ( s.Timed.ts_marking, s.Timed.ts_flight, s.Timed.ts_pending,
          s.Timed.ts_flight_iv, s.Timed.ts_pending_iv, s.Timed.ts_env,
          Timed.successors g i ))
  in
  Alcotest.(check bool) "same decoded graph" true (digest boxed = digest packed)

(* -- frozen explicit-expansion oracle -- *)

let test_explicit_four_states () =
  let net, _, q, t = one_shot ~firing:(Net.Const 2.0) ~enabling:Net.Zero in
  let g = Tx.build net in
  Alcotest.(check bool) "complete" true (Tx.complete g);
  (* states: initial -> fired (in flight 2) -> tick -> complete *)
  Alcotest.(check int) "four states" 4 (Tx.num_states g);
  Alcotest.(check int) "one deadlock" 1 (List.length (Tx.deadlocks g));
  Alcotest.(check int) "q bound" 1 (Tx.max_tokens g q);
  Alcotest.(check (option (float 0.0))) "t fires at 0" (Some 0.0)
    (Tx.min_cycle_time g t)

let test_explicit_tick_minimum () =
  (* two pending enabling delays 2 and 5: tick must be 2 *)
  let b = B.create "mintick" in
  let p = B.add_place b "p" ~initial:2 in
  let x = B.add_place b "x" in
  let y = B.add_place b "y" in
  let _ =
    B.add_transition b "fast" ~inputs:[ (p, 1) ] ~outputs:[ (x, 1) ]
      ~enabling:(Net.Const 2.0)
  in
  let _ =
    B.add_transition b "slow" ~inputs:[ (p, 1) ] ~outputs:[ (y, 1) ]
      ~enabling:(Net.Const 5.0)
  in
  let net = B.build b in
  let g = Tx.build net in
  let ticks =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun e -> match e.Tx.e_label with Tx.Tick d -> Some d | _ -> None)
          (Tx.successors g i))
      (List.init (Tx.num_states g) Fun.id)
  in
  Alcotest.(check bool) "first tick is 2" true (List.mem 2.0 ticks);
  Alcotest.(check bool) "no tick skips past a deadline" true
    (List.for_all (fun d -> d <= 5.0) ticks)

let test_explicit_horizon () =
  (* an infinite clock net explored up to a horizon stays finite even
     though states carry accumulated phase *)
  let b = B.create "clock" in
  let p = B.add_place b "p" ~initial:1 in
  let count = B.add_place b "ticks" in
  let _ =
    B.add_transition b "beat" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1); (count, 1) ]
      ~firing:(Net.Const 1.0)
  in
  let net = B.build b in
  let g = Tx.build ~horizon:4.0 ~max_states:1000 net in
  Alcotest.(check bool) "finite" true (Tx.num_states g < 50);
  Alcotest.(check bool) "ticks bounded by horizon" true
    (Tx.max_tokens g count <= 5)

let test_class_reduction () =
  (* the whole point: on a delay-heavy net the class graph is strictly
     smaller than the explicit expansion while agreeing on markings and
     deadlocks *)
  let net, _ = three_stage () in
  let g = Timed.build net in
  let x = Tx.build net in
  Alcotest.(check bool) "fewer classes than explicit states" true
    (Timed.num_states g < Tx.num_states x);
  let markings_of n state =
    List.init n state |> List.map Array.to_list |> List.sort_uniq compare
  in
  Alcotest.(check (list (list int))) "same reachable markings"
    (markings_of (Tx.num_states x) (fun i -> (Tx.state x i).Tx.ts_marking))
    (markings_of (Timed.num_states g) (fun i -> (Timed.state g i).Timed.ts_marking))

let test_summaries () =
  let net, _, _, _ = one_shot ~firing:(Net.Const 1.0) ~enabling:Net.Zero in
  let g = Timed.build net in
  let text = Format.asprintf "%a" Timed.pp_summary g in
  Testutil.check_contains "class summary" text "timed state-class graph";
  Testutil.check_contains "class summary" text "residual vectors:";
  let x = Tx.build net in
  let xtext = Format.asprintf "%a" Tx.pp_summary x in
  Testutil.check_contains "explicit summary" xtext "timed reachability graph"

(* -- steady-cycle analysis (RP84 performance evaluation) -- *)

let test_steady_cycle_clock () =
  (* a 1-cycle self-loop: period 1, one firing per cycle *)
  let b = B.create "clock" in
  let p = B.add_place b "p" ~initial:1 in
  let beat =
    B.add_transition b "beat" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ]
      ~firing:(Net.Const 1.0)
  in
  let net = B.build b in
  (match Timed.steady_cycle net with
  | Some c ->
    Alcotest.(check (float 1e-9)) "period 1" 1.0 c.Timed.cy_period;
    Alcotest.(check int) "one firing" 1 c.Timed.cy_firings.(beat)
  | None -> Alcotest.fail "expected a cycle")

let test_steady_cycle_pipeline_stages () =
  (* two stages in a ring with delays 2 and 3: the cycle takes 5 and each
     stage fires once *)
  let b = B.create "ring" in
  let a = B.add_place b "a" ~initial:1 in
  let bb = B.add_place b "b" in
  let s1 =
    B.add_transition b "s1" ~inputs:[ (a, 1) ] ~outputs:[ (bb, 1) ]
      ~firing:(Net.Const 2.0)
  in
  let s2 =
    B.add_transition b "s2" ~inputs:[ (bb, 1) ] ~outputs:[ (a, 1) ]
      ~enabling:(Net.Const 3.0)
  in
  let net = B.build b in
  (match Timed.steady_cycle net with
  | Some c ->
    Alcotest.(check (float 1e-9)) "period 5" 5.0 c.Timed.cy_period;
    Alcotest.(check int) "s1 once" 1 c.Timed.cy_firings.(s1);
    Alcotest.(check int) "s2 once" 1 c.Timed.cy_firings.(s2)
  | None -> Alcotest.fail "expected a cycle")

let test_steady_cycle_dead_net () =
  let b = B.create "oneshot" in
  let p = B.add_place b "p" ~initial:1 in
  let _ = B.add_transition b "t" ~inputs:[ (p, 1) ] ~firing:(Net.Const 1.0) in
  let net = B.build b in
  Alcotest.(check bool) "no cycle in a dying net" true
    (Timed.steady_cycle net = None)

let test_steady_cycle_matches_simulation () =
  (* the deterministic prefetch pipeline settles into a periodic regime;
     steady-cycle throughput must match the simulator's long-run rate *)
  let net = Pnut_pipeline.Model.prefetch_only Pnut_pipeline.Config.default in
  match Timed.steady_cycle net with
  | None -> Alcotest.fail "expected a steady cycle"
  | Some c ->
    let decode = Net.transition_id net "Decode" in
    let analytic_rate =
      float_of_int c.Timed.cy_firings.(decode) /. c.Timed.cy_period
    in
    let sink, get = Pnut_stat.Stat.sink () in
    let _ =
      Pnut_sim.Simulator.simulate ~seed:1 ~until:50_000.0 ~sink net
    in
    let sim_rate = Pnut_stat.Stat.throughput (get ()) "Decode" in
    Alcotest.(check bool)
      (Printf.sprintf "cycle rate %.4f vs simulated %.4f" analytic_rate sim_rate)
      true
      (Float.abs (analytic_rate -. sim_rate) < 0.01)

let () =
  Alcotest.run "timed-reach"
    [
      ( "construction",
        [
          Alcotest.test_case "firing time" `Quick test_firing_time_states;
          Alcotest.test_case "enabling time" `Quick test_enabling_time_states;
          Alcotest.test_case "conflict branches" `Quick test_conflict_branches;
          Alcotest.test_case "interval domains" `Quick test_interval_domains;
          Alcotest.test_case "residual enabling" `Quick
            test_residual_enabling_preserved;
          Alcotest.test_case "packed build" `Quick test_packed_build;
        ] );
      ( "durations",
        [
          Alcotest.test_case "stochastic rejected" `Quick test_stochastic_rejected;
          Alcotest.test_case "degenerate accepted" `Quick
            test_degenerate_durations_accepted;
          Alcotest.test_case "dynamic deterministic" `Quick test_interpreted_timed;
        ] );
      ( "queries",
        [
          Alcotest.test_case "never fires" `Quick test_never_fires;
          Alcotest.test_case "simulator agreement" `Quick
            test_agreement_with_simulator;
          Alcotest.test_case "summaries" `Quick test_summaries;
        ] );
      ( "explicit oracle",
        [
          Alcotest.test_case "four states" `Quick test_explicit_four_states;
          Alcotest.test_case "minimum tick" `Quick test_explicit_tick_minimum;
          Alcotest.test_case "horizon" `Quick test_explicit_horizon;
          Alcotest.test_case "class reduction" `Quick test_class_reduction;
        ] );
      ( "steady cycle",
        [
          Alcotest.test_case "self-loop clock" `Quick test_steady_cycle_clock;
          Alcotest.test_case "two-stage ring" `Quick
            test_steady_cycle_pipeline_stages;
          Alcotest.test_case "dead net" `Quick test_steady_cycle_dead_net;
          Alcotest.test_case "matches simulation" `Slow
            test_steady_cycle_matches_simulation;
        ] );
    ]
