(* Tests for supervised execution: resource budgets, cooperative
   cancellation and graceful degradation across every long-running
   entry point.  The adversarial workload throughout is a token
   generator (the coverability pump): its reachability graph is
   unbounded, so only a budget makes exploration terminate. *)

module Net = Pnut_core.Net
module B = Net.Builder
module Budget = Pnut_exec.Budget
module Supervisor = Pnut_exec.Supervisor
module Graph = Pnut_reach.Graph
module Cov = Pnut_reach.Coverability
module Sim = Pnut_sim.Simulator

(* t consumes p and returns it plus a token on q: unbounded in q. *)
let pump_net () =
  let b = B.create "pump" in
  let p = B.add_place b "p" ~initial:1 in
  let _q = B.add_place b "q" in
  let _ =
    B.add_transition b "pump" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1); (_q, 1) ]
  in
  B.build b

(* Same generator with an exponential enabling delay, inside the GSPN
   fragment (and simulable forever). *)
let exp_pump_net () =
  let b = B.create "exp_pump" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let _ =
    B.add_transition b "pump" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1); (q, 1) ]
      ~enabling:(Net.Exponential 0.001)
  in
  B.build b

(* k independent pumps: the Karp-Miller tree enumerates every subset of
   accelerated places, so it is far too large to finish in a test. *)
let many_pumps k =
  let b = B.create "pumps" in
  for i = 1 to k do
    let p = B.add_place b (Printf.sprintf "p%d" i) ~initial:1 in
    let q = B.add_place b (Printf.sprintf "q%d" i) in
    ignore
      (B.add_transition b (Printf.sprintf "t%d" i) ~inputs:[ (p, 1) ]
         ~outputs:[ (p, 1); (q, 1) ])
  done;
  B.build b

let wall_50ms () = Budget.make ~wall_s:0.05 ()
let generous () = Budget.make ~wall_s:300.0 ~heap_mb:4096 ()

let is_wall = function Supervisor.Wall _ -> true | _ -> false

(* -- Budget and Supervisor units -- *)

let test_budget () =
  Alcotest.(check bool) "none is none" true (Budget.is_none Budget.none);
  Alcotest.(check bool) "make () is none" true (Budget.is_none (Budget.make ()));
  Alcotest.(check bool) "wall is not none" false (Budget.is_none (wall_50ms ()));
  (* heap_mb is a spelling of heap_words *)
  let b = Budget.make ~heap_mb:8 () in
  Alcotest.(check (option int)) "heap_mb converts" (Some (Budget.words_of_mb 8))
    b.Budget.heap_words;
  Alcotest.(check bool) "words_of_mb positive" true (Budget.words_of_mb 1 > 0);
  (match Budget.make ~wall_s:(-1.0) () with
  | _ -> Alcotest.fail "negative wall limit accepted"
  | exception Invalid_argument _ -> ());
  (match Budget.make ~max_states:0 () with
  | _ -> Alcotest.fail "zero state cap accepted"
  | exception Invalid_argument _ -> ());
  let tok = Budget.token () in
  Alcotest.(check bool) "fresh token" false (Budget.cancelled tok);
  Budget.cancel tok;
  Budget.cancel tok;
  Alcotest.(check bool) "cancel is idempotent" true (Budget.cancelled tok)

let test_supervisor () =
  let m = Supervisor.start Budget.none in
  Alcotest.(check bool) "none monitor inactive" false (Supervisor.active m);
  Alcotest.(check bool) "none never trips" true (Supervisor.check m = None);
  Alcotest.(check bool) "no state cap" true (Supervisor.states_over m 1_000_000 = None);
  let m = Supervisor.start (Budget.make ~max_states:10 ~max_events:20 ()) in
  Alcotest.(check bool) "under cap" true (Supervisor.states_over m 9 = None);
  (match Supervisor.states_over m 10 with
  | Some (Supervisor.States 10) -> ()
  | _ -> Alcotest.fail "state cap should trip at 10");
  (match Supervisor.events_over m 20 with
  | Some (Supervisor.Events 20) -> ()
  | _ -> Alcotest.fail "event cap should trip at 20");
  Alcotest.(check (option int)) "max_states" (Some 10) (Supervisor.max_states m);
  Alcotest.(check (option int)) "max_events" (Some 20) (Supervisor.max_events m);
  (* a cancelled token trips check immediately *)
  let tok = Budget.token () in
  let m = Supervisor.start (Budget.make ~cancel:tok ()) in
  Alcotest.(check bool) "not yet cancelled" true (Supervisor.check m = None);
  Budget.cancel tok;
  (match Supervisor.check m with
  | Some Supervisor.Cancelled -> ()
  | _ -> Alcotest.fail "cancellation should trip");
  (* messages and progress render without raising *)
  let p = Supervisor.snapshot m ~visited:7 ~frontier:3 in
  Testutil.check_contains "progress" (Format.asprintf "%a" Supervisor.pp_progress p)
    "visited 7";
  Testutil.check_contains "wall message"
    (Supervisor.reason_message (Supervisor.Wall 0.05)) "wall-clock";
  Testutil.check_contains "heap message"
    (Supervisor.reason_message (Supervisor.Heap 123)) "heap";
  Testutil.check_contains "cancel message"
    (Supervisor.reason_message Supervisor.Cancelled) "cancel"

let test_outcome_helpers () =
  let c = Supervisor.Complete 41 in
  let m = Supervisor.start Budget.none in
  let d =
    Supervisor.Degraded
      { reason = Supervisor.Cancelled; partial = 1;
        progress = Supervisor.snapshot m ~visited:1 ~frontier:0 }
  in
  Alcotest.(check int) "value complete" 41 (Supervisor.value c);
  Alcotest.(check int) "value degraded" 1 (Supervisor.value d);
  Alcotest.(check bool) "degraded flags" true
    (Supervisor.degraded d && not (Supervisor.degraded c));
  Alcotest.(check int) "map" 42 (Supervisor.value (Supervisor.map succ c));
  Alcotest.(check int) "map degraded" 2 (Supervisor.value (Supervisor.map succ d))

(* -- Pool supervision -- *)

let test_pool_supervised () =
  let out =
    Pnut_exec.Pool.init_supervised ~jobs:3 8 (fun i ->
        if i = 2 || i = 5 then failwith (Printf.sprintf "task %d" i) else i * i)
  in
  Array.iteri
    (fun i o ->
      match o with
      | Pnut_exec.Pool.Done v ->
        Alcotest.(check int) (Printf.sprintf "task %d" i) (i * i) v
      | Pnut_exec.Pool.Failed { exn; backtrace = _ } ->
        if i <> 2 && i <> 5 then
          Alcotest.failf "task %d unexpectedly failed" i
        else
          Alcotest.(check string) "carries the exception"
            (Printf.sprintf "task %d" i)
            (match exn with Failure m -> m | _ -> "?"))
    out;
  (* init still re-raises the lowest-index failure, with its backtrace *)
  (match Pnut_exec.Pool.init ~jobs:2 4 (fun i ->
       if i >= 1 then failwith (Printf.sprintf "task %d" i) else i)
   with
  | _ -> Alcotest.fail "init should re-raise"
  | exception Failure m -> Alcotest.(check string) "lowest index" "task 1" m)

(* -- Simulator -- *)

let test_sim_budget () =
  let net = exp_pump_net () in
  (* event cap through the budget *)
  let st = Sim.create ~seed:7 net in
  (match Sim.run_supervised ~budget:(Budget.make ~max_events:500 ()) st with
  | Supervisor.Degraded { reason = Supervisor.Events n; partial; _ } ->
    Alcotest.(check int) "events payload" 500 n;
    Alcotest.(check int) "stopped at the cap" 500 partial.Sim.started
  | _ -> Alcotest.fail "expected Degraded (Events _)");
  (* wall budget on an endless run *)
  let st = Sim.create ~seed:7 net in
  (match Sim.run_supervised ~until:1e12 ~budget:(wall_50ms ()) st with
  | Supervisor.Degraded { reason; partial; progress } ->
    Alcotest.(check bool) "wall reason" true (is_wall reason);
    Alcotest.(check bool) "made progress" true (partial.Sim.started > 0);
    Alcotest.(check bool) "snapshot counts events" true
      (progress.Supervisor.visited = partial.Sim.started)
  | Supervisor.Complete _ -> Alcotest.fail "cannot complete until t=1e12");
  (* pre-cancelled token degrades at the first watchdog slot *)
  let tok = Budget.token () in
  Budget.cancel tok;
  let st = Sim.create ~seed:7 net in
  (match Sim.run_supervised ~until:1e12 ~budget:(Budget.make ~cancel:tok ()) st with
  | Supervisor.Degraded { reason = Supervisor.Cancelled; _ } -> ()
  | _ -> Alcotest.fail "expected Degraded Cancelled")

let test_sim_budget_identical () =
  (* a budgeted run that completes is indistinguishable from an
     unbudgeted one: same stop, clock, event counts and trace *)
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let run budget =
    let sink, get = Pnut_trace.Trace.collector () in
    let st = Sim.create ~seed:3 ~sink net in
    let o = Supervisor.value (Sim.run_supervised ~until:2000.0 ?budget st) in
    let t = get () in
    (o.Sim.stop, o.Sim.final_clock, o.Sim.started, o.Sim.finished,
     Pnut_trace.Trace.deltas t, Pnut_trace.Trace.final_time t)
  in
  let plain = run None and budgeted = run (Some (generous ())) in
  Alcotest.(check bool) "identical outcome and trace" true (plain = budgeted)

(* -- Reachability -- *)

let test_reach_wall_budget () =
  let net = pump_net () in
  match Graph.build_supervised ~max_states:max_int ~budget:(wall_50ms ()) net with
  | Supervisor.Degraded { reason; partial; progress } ->
    Alcotest.(check bool) "wall reason" true (is_wall reason);
    Alcotest.(check bool) "graph is non-trivial" true (Graph.num_states partial > 2);
    Alcotest.(check bool) "not complete" true (not (Graph.complete partial));
    Alcotest.(check int) "visited = states" (Graph.num_states partial)
      progress.Supervisor.visited;
    Alcotest.(check bool) "frontier reported" true (progress.Supervisor.frontier > 0)
  | Supervisor.Complete _ -> Alcotest.fail "the pump never completes"

let test_reach_partial_is_prefix () =
  let net = pump_net () in
  (* a state-capped build degrades too, carrying exactly the prefix *)
  let small =
    match Graph.build_supervised ~budget:(Budget.make ~max_states:40 ()) net with
    | Supervisor.Degraded { reason = Supervisor.States 40; partial; _ } -> partial
    | _ -> Alcotest.fail "expected Degraded (States 40)"
  in
  let big = Graph.build ~max_states:200 net in
  Alcotest.(check int) "prefix size" 40 (Graph.num_states small);
  for i = 0 to Graph.num_states small - 1 do
    Alcotest.(check (array int))
      (Printf.sprintf "state %d marking" i)
      (Graph.state big i).Graph.s_marking (Graph.state small i).Graph.s_marking
  done;
  (* every partial edge appears verbatim in the bigger graph *)
  List.iter
    (fun e ->
      Alcotest.(check bool) "edge in bigger graph" true
        (List.exists
           (fun e' ->
             e'.Graph.e_from = e.Graph.e_from
             && e'.Graph.e_to = e.Graph.e_to
             && e'.Graph.e_transition = e.Graph.e_transition)
           (Graph.edges big)))
    (Graph.edges small)

let test_reach_budget_identical () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let plain = Graph.build net in
  match Graph.build_supervised ~budget:(generous ()) net with
  | Supervisor.Complete g ->
    Alcotest.(check int) "states" (Graph.num_states plain) (Graph.num_states g);
    Alcotest.(check int) "edges" (Graph.num_edges plain) (Graph.num_edges g);
    Alcotest.(check bool) "complete" true (Graph.complete g)
  | Supervisor.Degraded _ -> Alcotest.fail "generous budget should not trip"

let test_timed_wall_budget () =
  let net = pump_net () in
  match
    Pnut_reach.Timed.build_supervised ~max_states:max_int
      ~budget:(wall_50ms ()) net
  with
  | Supervisor.Degraded { reason; partial; _ } ->
    Alcotest.(check bool) "wall reason" true (is_wall reason);
    Alcotest.(check bool) "partial states" true
      (Pnut_reach.Timed.num_states partial > 2)
  | Supervisor.Complete _ -> Alcotest.fail "the pump never completes"

(* -- Coverability -- *)

let test_coverability_budget () =
  (* wall trip: 24 independent pumps give a Karp-Miller tree of ~2^24
     subsets, unreachable in 50 ms *)
  (match Cov.build_supervised ~max_states:max_int ~budget:(wall_50ms ())
           (many_pumps 24)
   with
  | Supervisor.Degraded { reason; partial; _ } ->
    Alcotest.(check bool) "wall reason" true (is_wall reason);
    Alcotest.(check bool) "partial tree" true (Cov.num_nodes partial > 1);
    Alcotest.(check bool) "flagged incomplete" true (not (Cov.complete partial))
  | Supervisor.Complete _ -> Alcotest.fail "2^24 nodes in 50 ms?");
  (* state-cap trip via the budget *)
  (match Cov.build_supervised ~budget:(Budget.make ~max_states:5 ())
           (many_pumps 4)
   with
  | Supervisor.Degraded { reason = Supervisor.States _; partial; progress } ->
    Alcotest.(check int) "capped size" 5 (Cov.num_nodes partial);
    Alcotest.(check bool) "frontier left" true (progress.Supervisor.frontier > 0)
  | _ -> Alcotest.fail "expected Degraded (States _)");
  (* a completing budgeted build matches the plain one *)
  let net = many_pumps 3 in
  match Cov.build_supervised ~budget:(generous ()) net with
  | Supervisor.Complete g ->
    let plain = Cov.build net in
    Alcotest.(check int) "same nodes" (Cov.num_nodes plain) (Cov.num_nodes g);
    Alcotest.(check bool) "both unbounded" (Cov.is_bounded plain) (Cov.is_bounded g)
  | Supervisor.Degraded _ -> Alcotest.fail "generous budget should not trip"

(* -- GSPN -- *)

let test_gspn_budget () =
  let net = exp_pump_net () in
  (* wall trip mid-exploration still yields a usable partial analysis:
     unexpanded states are absorbing and the vector is re-normalized *)
  (* no max_iterations cap on purpose: once the wall budget has tripped
     during exploration, the stationary solve on the (large) partial chain
     must also bail out on its own budget polls instead of iterating to
     convergence *)
  (match Pnut_analytic.Gspn.analyze_supervised ~max_states:max_int
           ~budget:(wall_50ms ()) net
   with
  | Supervisor.Degraded { reason; partial; _ } ->
    Alcotest.(check bool) "wall reason" true (is_wall reason);
    Alcotest.(check bool) "tangible prefix" true
      (partial.Pnut_analytic.Gspn.tangible_states > 1);
    let mass =
      Array.fold_left ( +. ) 0.0 partial.Pnut_analytic.Gspn.place_means
    in
    Alcotest.(check bool) "means are finite" true (Float.is_finite mass)
  | Supervisor.Complete _ -> Alcotest.fail "the pump never completes");
  (* the state cap stays a structural rejection, not a budget trip *)
  match Pnut_analytic.Gspn.analyze_supervised ~max_states:64 net with
  | _ -> Alcotest.fail "expected Too_many_states"
  | exception Pnut_analytic.Gspn.Too_many_states r ->
    Alcotest.(check int) "cap recorded" 64 r.Pnut_analytic.Gspn.rj_cap;
    Testutil.check_contains "message names the cap"
      (Pnut_analytic.Gspn.rejection_message r) "max_states"

(* -- Replication and campaigns -- *)

let test_replication_budget () =
  let net = exp_pump_net () in
  (match
     Pnut_stat.Replication.replicate_supervised ~seed:5 ~budget:(wall_50ms ())
       ~runs:4 ~until:1e12 net (fun r -> Pnut_stat.Stat.throughput r "pump")
   with
  | Supervisor.Degraded { reason; partial; _ } ->
    Alcotest.(check bool) "wall reason" true (is_wall reason);
    Alcotest.(check bool) "truncated runs dropped" true
      (partial.Pnut_stat.Replication.pr_completed < 4)
  | Supervisor.Complete _ -> Alcotest.fail "cannot complete until t=1e12");
  (* generous budget: estimate identical to the unbudgeted sweep *)
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let read r = Pnut_stat.Stat.utilization r "Bus_busy" in
  let plain =
    Pnut_stat.Replication.replicate ~seed:5 ~runs:4 ~until:2000.0 net read
  in
  match
    Pnut_stat.Replication.replicate_supervised ~seed:5 ~budget:(generous ())
      ~runs:4 ~until:2000.0 net read
  with
  | Supervisor.Complete p ->
    Alcotest.(check bool) "identical estimate" true
      (p.Pnut_stat.Replication.pr_estimate = Some plain)
  | Supervisor.Degraded _ -> Alcotest.fail "generous budget should not trip"

let test_campaign_budget () =
  let net = exp_pump_net () in
  let specs = Pnut_fault.Fault.parse "delay-scale pump factor 2" in
  (match
     Pnut_fault.Campaign.run_supervised ~runs:2 ~until:1e12
       ~budget:(wall_50ms ()) net specs
   with
  | Supervisor.Degraded { reason; partial; _ } ->
    Alcotest.(check bool) "wall reason" true (is_wall reason);
    Alcotest.(check bool) "some run exhausted" true
      (List.exists
         (fun r ->
           match r.Pnut_fault.Campaign.rr_class with
           | Pnut_fault.Campaign.Exhausted _ -> true
           | _ -> false)
         (partial.Pnut_fault.Campaign.cr_baseline
         @ partial.Pnut_fault.Campaign.cr_faulty));
    (* the report still renders *)
    Testutil.check_contains "render" (Pnut_fault.Campaign.render partial) "run"
  | Supervisor.Complete _ -> Alcotest.fail "cannot complete until t=1e12");
  (* generous budget reproduces the unbudgeted report *)
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let specs = Pnut_fault.Fault.parse "delay-scale Decode factor 3" in
  let plain = Pnut_fault.Campaign.run ~runs:2 ~until:2000.0 net specs in
  match
    Pnut_fault.Campaign.run_supervised ~runs:2 ~until:2000.0
      ~budget:(generous ()) net specs
  with
  | Supervisor.Complete report ->
    Alcotest.(check string) "identical report"
      (Pnut_fault.Campaign.render_csv plain)
      (Pnut_fault.Campaign.render_csv report)
  | Supervisor.Degraded _ -> Alcotest.fail "generous budget should not trip"

let () =
  Alcotest.run "supervision"
    [
      ( "supervision",
        [
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "supervisor" `Quick test_supervisor;
          Alcotest.test_case "outcome helpers" `Quick test_outcome_helpers;
          Alcotest.test_case "pool supervised" `Quick test_pool_supervised;
          Alcotest.test_case "sim budget" `Quick test_sim_budget;
          Alcotest.test_case "sim budget identical" `Quick
            test_sim_budget_identical;
          Alcotest.test_case "reach wall budget" `Quick test_reach_wall_budget;
          Alcotest.test_case "reach partial prefix" `Quick
            test_reach_partial_is_prefix;
          Alcotest.test_case "reach budget identical" `Quick
            test_reach_budget_identical;
          Alcotest.test_case "timed wall budget" `Quick test_timed_wall_budget;
          Alcotest.test_case "coverability budget" `Quick
            test_coverability_budget;
          Alcotest.test_case "gspn budget" `Quick test_gspn_budget;
          Alcotest.test_case "replication budget" `Quick
            test_replication_budget;
          Alcotest.test_case "campaign budget" `Quick test_campaign_budget;
        ] );
    ]
