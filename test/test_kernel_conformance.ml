(* Cross-layer conformance: every consumer of the shared firing kernel
   against an interpreted oracle, on randomly generated extended nets.

   PR 5 moved the transition relation into [Pnut_core.Kernel] and ported
   the simulator, the reachability builders and the GSPN solver onto it.
   Three independent paths must therefore agree with the code that did
   not change:

   - [Reach.Graph.build] (kernel arc arrays + interpreted
     predicates/actions on per-state environments) against a
     straightforward BFS written here over [Net.enabled] /
     [Net.consume] / [Net.produce] / [Expr.run_stmts] — the same
     numbering, the same states, the same edges, including truncation
     behaviour at the state cap;
   - the explorer's firing path ([fire_transition], which drives
     [Pnut_sim.Explorer]) on the optimized engine against the frozen
     [Reference] engine;
   - engine single-steps ([step]) against [Reference] steps.

   The generator covers what the kernel compiles: arc weights above 1,
   inhibitors, every duration kind, frequencies, deterministic
   predicates and table-writing actions. *)

module Net = Pnut_core.Net
module B = Net.Builder
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module Marking = Pnut_core.Marking
module Env = Pnut_core.Env
module Sim = Pnut_sim.Simulator
module Ref = Pnut_sim.Reference
module Checkpoint = Pnut_sim.Checkpoint
module Graph = Pnut_reach.Graph

(* -- random net generation (same shape as the differential suite) -- *)

type tr_spec = {
  ts_inputs : (int * int) list;
  ts_inhibitors : (int * int) list;
  ts_outputs : (int * int) list;
  ts_enabling : int;
  ts_firing : int;
  ts_frequency : int;
  ts_predicate : int;
  ts_action : int;
}

type spec = {
  sp_tokens : int list;
  sp_trans : tr_spec list;
}

let gen_spec =
  QCheck2.Gen.(
    let* np = int_range 2 5 in
    let* tokens = list_size (return np) (int_range 0 3) in
    let tokens =
      if List.for_all (fun t -> t = 0) tokens then 2 :: List.tl tokens
      else tokens
    in
    let gen_arcs lo hi =
      list_size (int_range lo hi) (pair (int_range 0 (np - 1)) (int_range 1 2))
    in
    let gen_tr =
      let* ts_inputs = gen_arcs 1 2 in
      let* ts_inhibitors =
        let* with_inh = int_range 0 3 in
        if with_inh = 0 then gen_arcs 1 1 else return []
      in
      let* ts_outputs = gen_arcs 1 2 in
      let* ts_enabling = int_range 0 6 in
      let* ts_firing = int_range 0 6 in
      let* ts_frequency = int_range 1 3 in
      let* ts_predicate = int_range 0 5 in
      let* ts_action = int_range 0 3 in
      return
        { ts_inputs; ts_inhibitors; ts_outputs; ts_enabling; ts_firing;
          ts_frequency; ts_predicate; ts_action }
    in
    let* ntr = int_range 1 6 in
    let* sp_trans = list_size (return ntr) gen_tr in
    return { sp_tokens = tokens; sp_trans })

let emod a b = Expr.Binop (Expr.Mod, a, b)

let duration_of_code = function
  | 0 -> Net.Zero
  | 1 -> Net.Const 1.0
  | 2 -> Net.Const 2.5
  | 3 -> Net.Uniform (0.5, 2.0)
  | 4 -> Net.Exponential 1.5
  | 5 -> Net.Choice [ (1.0, 1.0); (2.0, 2.0); (0.5, 1.0) ]
  | _ -> Net.Dynamic Expr.(int 1 + emod (var "counter") (int 3))

let predicate_of_code = function
  | 1 -> Some Expr.(emod (var "counter") (int 2) = int 0)
  | 2 -> Some Expr.(var "counter" < int 25)
  | 3 -> Some Expr.(index "tbl" (emod (var "counter") (int 4)) <= int 6)
  | _ -> None

let action_of_code = function
  | 1 -> [ Expr.Assign ("counter", Expr.(var "counter" + int 1)) ]
  | 2 ->
    [ Expr.Assign ("counter", Expr.(var "counter" + int 1));
      Expr.Table_assign
        ( "tbl",
          emod (Expr.var "counter") (Expr.int 4),
          Expr.(index "tbl" (emod (var "counter") (int 4)) + int 1) ) ]
  | 3 -> [ Expr.Table_assign ("tbl", Expr.int 0, Expr.(index "tbl" (int 0) + int 1)) ]
  | _ -> []

let build_net ?(untimed = false) spec =
  let b =
    B.create "conformance"
      ~variables:[ ("counter", Value.Int 0) ]
      ~tables:[ ("tbl", Array.make 4 (Value.Int 0)) ]
  in
  let np = List.length spec.sp_tokens in
  let places =
    List.mapi
      (fun i tokens -> B.add_place b (Printf.sprintf "p%d" i) ~initial:tokens)
      spec.sp_tokens
  in
  let arcs l =
    List.sort_uniq compare l
    |> List.map (fun (i, w) -> (List.nth places (i mod np), w))
    |> List.fold_left
         (fun acc (p, w) ->
           match acc with
           | (p', w') :: rest when p' = p -> (p, max w w') :: rest
           | _ -> (p, w) :: acc)
         []
    |> List.rev
  in
  List.iteri
    (fun ti ts ->
      ignore
        (B.add_transition b
           (Printf.sprintf "t%d" ti)
           ~inputs:(arcs ts.ts_inputs)
           ~inhibitors:(arcs ts.ts_inhibitors)
           ~outputs:(arcs ts.ts_outputs)
           ~enabling:(if untimed then Net.Zero else duration_of_code ts.ts_enabling)
           ~firing:(if untimed then Net.Zero else duration_of_code ts.ts_firing)
           ~frequency:(float_of_int ts.ts_frequency)
           ?predicate:(predicate_of_code ts.ts_predicate)
           ~action:(action_of_code ts.ts_action)
          : Net.transition_id))
    spec.sp_trans;
  B.build b

(* -- oracle reachability graph, interpreted end to end --

   Same BFS discipline as [Graph.build] (FIFO interning, ascending
   transition order, cap drops edges into would-be-fresh states) but
   every semantic decision goes through the pre-kernel interpreted
   entry points: [Net.enabled], [Net.consume], [Net.produce],
   [Expr.run_stmts].  States are keyed structurally on marking,
   bindings and table contents. *)

type oracle = {
  o_states : (int array * (string * Value.t) list) array;
  o_edges : (int * int * int) list;  (* from, transition, to *)
  o_complete : bool;
}

let oracle_build ~max_states net =
  let key m env =
    ( Marking.to_array m,
      Env.bindings env,
      List.map (fun (n, a) -> (n, Array.to_list a)) (Env.tables env) )
  in
  let index = Hashtbl.create 256 in
  let states = ref [] in
  let n = ref 0 in
  let truncated = ref false in
  let edges = ref [] in
  let queue = Queue.create () in
  let intern m env =
    let k = key m env in
    match Hashtbl.find_opt index k with
    | Some i -> Some i
    | None ->
      if !n >= max_states then begin
        truncated := true;
        None
      end
      else begin
        let i = !n in
        incr n;
        Hashtbl.replace index k i;
        states := (Marking.to_array m, Env.bindings env) :: !states;
        Queue.add (i, m, env) queue;
        Some i
      end
  in
  let m0 = Net.initial_marking net in
  let env0 = Net.initial_env net in
  ignore (intern m0 env0 : int option);
  while not (Queue.is_empty queue) do
    let i, m, env = Queue.pop queue in
    Array.iter
      (fun tr ->
        if Net.enabled net m env tr then begin
          let m' = Marking.copy m in
          Net.consume net m' tr;
          Net.produce net m' tr;
          let env' = Env.copy env in
          Expr.run_stmts env' tr.Net.t_action;
          match intern m' env' with
          | Some j -> edges := (i, tr.Net.t_id, j) :: !edges
          | None -> ()
        end)
      (Net.transitions net)
  done;
  { o_states = Array.of_list (List.rev !states);
    o_edges = List.rev !edges;
    o_complete = not !truncated }

let prop_graph_matches_oracle =
  QCheck2.Test.make
    ~name:"kernel-based Reach.Graph equals the interpreted oracle BFS"
    ~count:120 gen_spec (fun spec ->
      let net = build_net spec in
      let cap = 400 in
      let g = Graph.build ~max_states:cap ~jobs:1 net in
      let o = oracle_build ~max_states:cap net in
      Graph.complete g = o.o_complete
      && Graph.num_states g = Array.length o.o_states
      && Array.for_all
           (fun (s : Graph.state) ->
             let om, oe = o.o_states.(s.Graph.s_index) in
             s.Graph.s_marking = om && s.Graph.s_env = oe)
           (Array.init (Graph.num_states g) (Graph.state g))
      && List.map
           (fun (e : Graph.edge) -> (e.Graph.e_from, e.Graph.e_transition, e.Graph.e_to))
           (Graph.edges g)
         = o.o_edges)

let prop_graph_parallel_matches_oracle =
  (* the worker-domain expansion path shares parent environments for
     action-free transitions; numbering must still match the oracle *)
  QCheck2.Test.make
    ~name:"parallel Reach.Graph build equals the interpreted oracle BFS"
    ~count:40 gen_spec (fun spec ->
      let net = build_net spec in
      let cap = 400 in
      let g = Graph.build ~max_states:cap ~jobs:4 net in
      let o = oracle_build ~max_states:cap net in
      Graph.num_states g = Array.length o.o_states
      && List.map
           (fun (e : Graph.edge) -> (e.Graph.e_from, e.Graph.e_transition, e.Graph.e_to))
           (Graph.edges g)
         = o.o_edges)

(* -- explorer firing path against the frozen Reference engine -- *)

let cap = 200

let prop_fire_transition_matches_reference =
  QCheck2.Test.make
    ~name:"explorer firings agree between kernel engine and Reference"
    ~count:150 gen_spec (fun spec ->
      let net = build_net spec in
      let sr = Ref.create ~seed:17 ~max_instant_firings:cap net in
      let sf = Sim.create ~seed:17 ~max_instant_firings:cap net in
      let ok = ref true in
      (try
         for i = 0 to 40 do
           let fr = Ref.fireable_transitions sr in
           let ff = Sim.fireable_transitions sf in
           if fr <> ff then begin
             ok := false;
             raise Exit
           end;
           (match fr with
           | [] ->
             (* advance time through the normal schedulers instead *)
             (match (Ref.step sr, Sim.step sf) with
             | Sim.Quiescent, Sim.Quiescent -> raise Exit
             | a, b -> if a <> b then (ok := false; raise Exit))
           | _ :: _ ->
             let tid = List.nth fr (i mod List.length fr) in
             Ref.fire_transition sr tid;
             Sim.fire_transition sf tid);
           if Ref.clock sr <> Sim.clock sf
              || not (Marking.equal (Ref.marking sr) (Sim.marking sf))
           then begin
             ok := false;
             raise Exit
           end
         done
       with
      | Exit -> ()
      | Sim.Sim_error _ -> ());
      !ok
      && String.equal
           (Checkpoint.to_string (Ref.checkpoint sr))
           (Checkpoint.to_string (Sim.checkpoint sf)))

(* -- engine single-steps against Reference -- *)

let prop_steps_match_reference =
  QCheck2.Test.make
    ~name:"engine single-steps agree with Reference on random nets"
    ~count:150 gen_spec (fun spec ->
      let net = build_net spec in
      let sr = Ref.create ~seed:29 ~max_instant_firings:cap net in
      let sf = Sim.create ~seed:29 ~max_instant_firings:cap net in
      let ok = ref true in
      (try
         for _ = 0 to 200 do
           let a = Ref.step sr in
           let b = Sim.step sf in
           if a <> b
              || Ref.clock sr <> Sim.clock sf
              || not (Marking.equal (Ref.marking sr) (Sim.marking sf))
           then begin
             ok := false;
             raise Exit
           end;
           if a = Sim.Quiescent || Ref.clock sr > 50.0 then raise Exit
         done
       with
      | Exit -> ()
      | Sim.Sim_error _ -> ());
      !ok)

let () =
  Alcotest.run "kernel-conformance"
    [
      ( "layers",
        [
          QCheck_alcotest.to_alcotest prop_graph_matches_oracle;
          QCheck_alcotest.to_alcotest prop_graph_parallel_matches_oracle;
          QCheck_alcotest.to_alcotest prop_fire_transition_matches_reference;
          QCheck_alcotest.to_alcotest prop_steps_match_reference;
        ] );
    ]
