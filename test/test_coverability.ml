(* Tests for the Karp-Miller coverability analysis. *)

module Net = Pnut_core.Net
module B = Net.Builder
module Cov = Pnut_reach.Coverability

let bounded_net () =
  let b = B.create "cycle" in
  let p = B.add_place b "p" ~initial:2 in
  let q = B.add_place b "q" in
  let _ = B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ] in
  let _ = B.add_transition b "u" ~inputs:[ (q, 1) ] ~outputs:[ (p, 1) ] in
  (B.build b, p, q)

let unbounded_net () =
  (* classic pump: t consumes p and returns it plus a token on q *)
  let b = B.create "pump" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let _ = B.add_transition b "pump" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1); (q, 1) ] in
  (B.build b, p, q)

let test_bounded () =
  let net, p, q = bounded_net () in
  let g = Cov.build net in
  Alcotest.(check bool) "complete" true (Cov.complete g);
  Alcotest.(check bool) "bounded" true (Cov.is_bounded g);
  Alcotest.(check (option int)) "p bound" (Some 2) (Cov.place_bound g p);
  Alcotest.(check (option int)) "q bound" (Some 2) (Cov.place_bound g q);
  Alcotest.(check (list int)) "no unbounded places" [] (Cov.unbounded_places g)

let test_unbounded () =
  let net, p, q = unbounded_net () in
  let g = Cov.build net in
  Alcotest.(check bool) "terminates despite unboundedness" true (Cov.complete g);
  Alcotest.(check bool) "unbounded detected" false (Cov.is_bounded g);
  Alcotest.(check (option int)) "p stays bounded" (Some 1) (Cov.place_bound g p);
  Alcotest.(check (option int)) "q unbounded" None (Cov.place_bound g q);
  Alcotest.(check (list int)) "q listed" [ q ] (Cov.unbounded_places g);
  (* the graph is tiny: {p=1,q=0} and {p=1,q=ω} *)
  Alcotest.(check bool) "small graph" true (Cov.num_nodes g <= 3)

let test_edges () =
  let net, _, _ = unbounded_net () in
  let g = Cov.build net in
  let edges = Cov.edges g in
  Alcotest.(check bool) "edges recorded" true (edges <> []);
  (* the accelerated node has a self-loop through the pump transition *)
  let pump = Net.transition_id net "pump" in
  Alcotest.(check bool) "pump self-loop on the omega node" true
    (List.exists
       (fun e ->
         e.Cov.e_transition = pump && e.Cov.e_from = e.Cov.e_to
         && Array.exists (fun t -> t = Cov.Omega)
              (Cov.node g e.Cov.e_from).Cov.n_marking)
       edges);
  (* successors of the initial node lead onward *)
  Alcotest.(check bool) "initial has a successor" true
    (Cov.successors g 0 <> [])

let test_covers () =
  let net, _, _ = unbounded_net () in
  let g = Cov.build net in
  Alcotest.(check bool) "can cover q=100 (unbounded)" true (Cov.covers g [| 0; 100 |]);
  Alcotest.(check bool) "cannot cover p=2" false (Cov.covers g [| 2; 0 |]);
  let net2, _, _ = bounded_net () in
  let g2 = Cov.build net2 in
  Alcotest.(check bool) "bounded: q=2 coverable" true (Cov.covers g2 [| 0; 2 |]);
  Alcotest.(check bool) "bounded: q=3 not coverable" false (Cov.covers g2 [| 0; 3 |])

let test_producer_consumer_unbounded_buffer () =
  (* producer fills an unbounded buffer faster than the consumer drains *)
  let b = B.create "prodcons" in
  let idle_p = B.add_place b "producer_idle" ~initial:1 in
  let buffer = B.add_place b "buffer" in
  let idle_c = B.add_place b "consumer_idle" ~initial:1 in
  let _ =
    B.add_transition b "produce" ~inputs:[ (idle_p, 1) ]
      ~outputs:[ (idle_p, 1); (buffer, 1) ]
  in
  let _ =
    B.add_transition b "consume" ~inputs:[ (idle_c, 1); (buffer, 1) ]
      ~outputs:[ (idle_c, 1) ]
  in
  let net = B.build b in
  let g = Cov.build net in
  Alcotest.(check bool) "buffer unbounded" false (Cov.is_bounded g);
  Alcotest.(check (option int)) "buffer is the culprit" None
    (Cov.place_bound g (Net.place_id net "buffer"));
  Alcotest.(check (option int)) "producer place bounded" (Some 1)
    (Cov.place_bound g (Net.place_id net "producer_idle"))

let test_pipeline_is_bounded () =
  (* the pipeline model has inhibitors, so coverability rejects it;
     its inhibitor-free prefetch fragment without the inhibition is
     testable after stripping — instead we check the rejection paths *)
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  (match Cov.build net with
  | _ -> Alcotest.fail "expected inhibitor rejection"
  | exception Cov.Unsupported r ->
    Alcotest.(check bool) "feature" true (r.Cov.r_feature = Cov.Inhibitor_arcs);
    Testutil.check_contains "message" (Cov.rejection_message r) "inhibitor")

let test_predicate_rejected () =
  let b = B.create "interp" ~variables:[ ("n", Pnut_core.Value.Int 0) ] in
  let p = B.add_place b "p" ~initial:1 in
  let _ =
    B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ]
      ~predicate:Pnut_core.Expr.(var "n" > int 0)
  in
  let net = B.build b in
  match Cov.build net with
  | _ -> Alcotest.fail "expected predicate rejection"
  | exception Cov.Unsupported r ->
    Alcotest.(check bool) "feature" true (r.Cov.r_feature = Cov.Predicate);
    Testutil.check_contains "message" (Cov.rejection_message r) "predicate"

let test_weighted_arcs () =
  (* accumulate two tokens, spend three: net gain -1 per pair... the net
     is bounded; weights must be respected in the ω arithmetic *)
  let b = B.create "weighted" in
  let p = B.add_place b "p" ~initial:6 in
  let q = B.add_place b "q" in
  let _ = B.add_transition b "t" ~inputs:[ (p, 3) ] ~outputs:[ (q, 2) ] in
  let net = B.build b in
  let g = Cov.build net in
  Alcotest.(check bool) "bounded" true (Cov.is_bounded g);
  Alcotest.(check (option int)) "q reaches 4" (Some 4)
    (Cov.place_bound g (Net.place_id net "q"))

let test_omega_propagates () =
  (* once a place is ω, downstream places fed from it become ω too *)
  let b = B.create "cascade" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let r = B.add_place b "r" in
  let _ = B.add_transition b "pump" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1); (q, 1) ] in
  let _ = B.add_transition b "move" ~inputs:[ (q, 1) ] ~outputs:[ (r, 1) ] in
  let net = B.build b in
  let g = Cov.build net in
  Alcotest.(check (option int)) "q unbounded" None
    (Cov.place_bound g (Net.place_id net "q"));
  Alcotest.(check (option int)) "r unbounded too" None
    (Cov.place_bound g (Net.place_id net "r"))

let test_summary () =
  let net, _, _ = unbounded_net () in
  let g = Cov.build net in
  let text = Format.asprintf "%a" (Cov.pp_summary net) g in
  Testutil.check_contains "summary" text "bounded: false";
  Testutil.check_contains "summary" text "unbounded places: q"

let () =
  Alcotest.run "coverability"
    [
      ( "karp-miller",
        [
          Alcotest.test_case "bounded net" `Quick test_bounded;
          Alcotest.test_case "unbounded net" `Quick test_unbounded;
          Alcotest.test_case "covers" `Quick test_covers;
          Alcotest.test_case "edges" `Quick test_edges;
          Alcotest.test_case "producer/consumer" `Quick
            test_producer_consumer_unbounded_buffer;
          Alcotest.test_case "inhibitors rejected" `Quick test_pipeline_is_bounded;
          Alcotest.test_case "predicates rejected" `Quick test_predicate_rejected;
          Alcotest.test_case "weighted arcs" `Quick test_weighted_arcs;
          Alcotest.test_case "omega propagates" `Quick test_omega_propagates;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
    ]
