(* Stubborn-set partial-order reduction: reduction factors on the indep
   benchmark family, differential agreement with the full build, jobs
   determinism, budget behavior and fragment rejection. *)

module Net = Pnut_core.Net
module Marking = Pnut_core.Marking
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module B = Net.Builder
module Graph = Pnut_reach.Graph
module Stubborn = Pnut_reach.Stubborn
module Pool = Pnut_exec.Pool
module Supervisor = Pnut_exec.Supervisor

(* the single-core CI box would otherwise print a contention warning per
   distinct explicit --jobs value *)
let () = Pool.set_warning_printer (fun _ -> ())

let deadlock_markings g =
  Graph.deadlocks g
  |> List.map (fun i -> (Graph.state g i).Graph.s_marking)
  |> List.sort compare

let check_same_deadlocks what full reduced =
  Alcotest.(check (list (array int)))
    (what ^ ": deadlock marking sets")
    (deadlock_markings full) (deadlock_markings reduced)

let check_same_bounds what net full reduced =
  for p = 0 to Net.num_places net - 1 do
    Alcotest.(check int)
      (Printf.sprintf "%s: bound of %s" what (Net.place net p).Net.p_name)
      (Graph.bound full p) (Graph.bound reduced p)
  done

(* -- indep<N>x<K>: the interleaving-explosion benchmark -- *)

let test_indep_reduction () =
  let net = Pnut_pipeline.Indep.net ~pipelines:6 ~stages:4 in
  List.iter
    (fun packed ->
      let what = if packed then "packed" else "boxed" in
      let full = Graph.build ~packed net in
      let reduced = Graph.build ~packed ~por:true net in
      Alcotest.(check int) (what ^ ": full graph is 5^6") 15625
        (Graph.num_states full);
      Alcotest.(check bool)
        (what ^ ": reduced visits >= 5x fewer states")
        true
        (Graph.num_states full >= 5 * Graph.num_states reduced);
      Alcotest.(check bool) (what ^ ": both complete") true
        (Graph.complete full && Graph.complete reduced);
      check_same_deadlocks what full reduced;
      check_same_bounds what net full reduced)
    [ false; true ]

let test_indep_deadlock_is_final_slots () =
  (* the unique deadlock has every token in its pipeline's last slot —
     in full and reduced builds alike *)
  let net = Pnut_pipeline.Indep.net ~pipelines:3 ~stages:2 in
  let expected = Array.make (Net.num_places net) 0 in
  for i = 0 to 2 do
    expected.(Net.place_id net (Printf.sprintf "P%d_s2" (i + 1))) <- 1
  done;
  List.iter
    (fun por ->
      let g = Graph.build ~por net in
      match deadlock_markings g with
      | [ m ] ->
        Alcotest.(check (array int))
          (Printf.sprintf "por=%b: all tokens in final slots" por)
          expected m
      | l ->
        Alcotest.failf "por=%b: expected 1 deadlock, got %d" por
          (List.length l))
    [ false; true ]

let test_indep_parse_name () =
  Alcotest.(check (option (pair int int)))
    "indep6x4" (Some (6, 4))
    (Pnut_pipeline.Indep.parse_name "indep6x4");
  List.iter
    (fun s ->
      Alcotest.(check (option (pair int int))) s None
        (Pnut_pipeline.Indep.parse_name s))
    [ "indep0x4"; "indep6x0"; "indep6x"; "indepx4"; "pipeline";
      "indep6x4b"; "indep-1x4" ]

(* -- jobs sweep: the reduced packed arrays are byte-identical -- *)

let test_jobs_sweep_identical () =
  let net = Pnut_pipeline.Indep.net ~pipelines:4 ~stages:3 in
  let arrays jobs =
    let g = Graph.build ~packed:true ~por:true ~jobs net in
    Alcotest.(check bool)
      (Printf.sprintf "jobs=%d complete" jobs)
      true (Graph.complete g);
    match Graph.packed_arrays g with
    | Some a -> a
    | None -> Alcotest.failf "jobs=%d: not a packed graph" jobs
  in
  let a1, i1, o1, d1 = arrays 1 in
  List.iter
    (fun jobs ->
      let a, i, o, d = arrays jobs in
      let chk what x y =
        Alcotest.(check (array int))
          (Printf.sprintf "jobs=%d %s identical" jobs what)
          x y
      in
      chk "arena" a1 a;
      chk "index" i1 i;
      chk "succ_off" o1 o;
      chk "succ_dat" d1 d)
    [ 2; 4 ]

(* -- random terminating nets: differential full vs reduced -- *)

(* Layered forward nets: every transition consumes >= 1 token from its
   input places, and every output place sits strictly above every input
   place with at most as many output arcs as input arcs.  The potential
   sum of m(p) * 2^(np-1-p) then drops on every firing (each produced
   token is worth at most half the cheapest consumed one), so every run
   terminates — which is exactly the fragment where the coarse conflict
   relation preserves place bounds, not just deadlocks.  Inhibitor arcs
   are thrown in freely: they restrict enabling without moving tokens. *)
let random_terminating_net seed =
  let rng = Random.State.make [| seed |] in
  let int n = Random.State.int rng n in
  let np = 4 + int 5 in
  let nt = 2 + int 7 in
  let b = B.create (Printf.sprintf "rand%d" seed) in
  let places =
    Array.init np (fun i ->
        let initial = if i < (np + 1) / 2 then int 3 else 0 in
        B.add_place b (Printf.sprintf "p%d" i) ~initial)
  in
  for t = 0 to nt - 1 do
    let maxin = int (np - 1) in
    let ins =
      if int 2 = 1 && maxin > 0 then
        List.sort_uniq compare [ int maxin; maxin ]
      else [ maxin ]
    in
    let avail = List.init (np - 1 - maxin) (fun i -> maxin + 1 + i) in
    let no = min (int (List.length ins + 1)) (List.length avail) in
    let outs =
      List.map (fun p -> (Random.State.bits rng, p)) avail
      |> List.sort compare |> List.map snd
      |> List.filteri (fun i _ -> i < no)
    in
    let inhibitors =
      if int 10 < 3 then
        let p = int np in
        if List.mem p ins then [] else [ (places.(p), 1 + int 2) ]
      else []
    in
    ignore
      (B.add_transition b
         (Printf.sprintf "t%d" t)
         ~inputs:(List.map (fun p -> (places.(p), 1)) ins)
         ~inhibitors
         ~outputs:(List.map (fun p -> (places.(p), 1)) outs)
        : Net.transition_id)
  done;
  B.build b

let prop_differential =
  QCheck2.Test.make ~name:"reduced build agrees on deadlocks and bounds"
    ~count:120
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let net = random_terminating_net seed in
      let full = Graph.build ~max_states:200_000 net in
      let reduced = Graph.build ~max_states:200_000 ~por:true net in
      if not (Graph.complete full && Graph.complete reduced) then
        QCheck2.Test.fail_report "unexpected truncation on a tiny net";
      if deadlock_markings full <> deadlock_markings reduced then
        QCheck2.Test.fail_report "deadlock marking sets differ";
      for p = 0 to Net.num_places net - 1 do
        if Graph.bound full p <> Graph.bound reduced p then
          QCheck2.Test.fail_reportf "bound of place %d differs: %d vs %d" p
            (Graph.bound full p) (Graph.bound reduced p)
      done;
      (* never more states than the full graph, and the packed reduced
         build matches the boxed reduced build state-for-state *)
      if Graph.num_states reduced > Graph.num_states full then
        QCheck2.Test.fail_report "reduced graph larger than full";
      let packed = Graph.build ~max_states:200_000 ~packed:true ~por:true net in
      if Graph.num_states packed <> Graph.num_states reduced
         || Graph.num_edges packed <> Graph.num_edges reduced
      then QCheck2.Test.fail_report "packed/boxed reduced builds disagree";
      true)

(* -- budgets: truncation still degrades gracefully under por -- *)

let test_budget_truncation () =
  let net = Pnut_pipeline.Indep.net ~pipelines:6 ~stages:4 in
  match Graph.build_supervised ~max_states:10 ~por:true net with
  | Supervisor.Complete _ -> Alcotest.fail "expected truncation at 10 states"
  | Supervisor.Degraded { partial; reason; _ } ->
    (match reason with
    | Supervisor.States n -> Alcotest.(check int) "cap reported" 10 n
    | _ -> Alcotest.fail "expected a state-cap trip");
    Alcotest.(check bool) "partial flagged incomplete" false
      (Graph.complete partial);
    Alcotest.(check int) "prefix capped" 10 (Graph.num_states partial)

(* -- fragment rejection -- *)

let test_unsupported () =
  let variables = B.create ~variables:[ ("x", Value.Int 0) ] "vars" in
  let _ = B.add_place variables "p" ~initial:1 in
  (match Stubborn.unsupported (B.build variables) with
  | Some { Stubborn.r_feature = Stubborn.Variables; r_transition = None } ->
    ()
  | _ -> Alcotest.fail "variables should be rejected net-wide");
  let pred = B.create "pred" in
  let p = B.add_place pred "p" ~initial:1 in
  let _ =
    B.add_transition pred "guarded" ~inputs:[ (p, 1) ]
      ~predicate:(Expr.bool true)
  in
  (match Stubborn.unsupported (B.build pred) with
  | Some { Stubborn.r_feature = Stubborn.Predicate; r_transition = Some t } ->
    Alcotest.(check string) "names the transition" "guarded" t
  | _ -> Alcotest.fail "predicates should be rejected per-transition");
  let act = B.create ~variables:[ ("x", Value.Int 0) ] "act" in
  let q = B.add_place act "q" ~initial:1 in
  let _ =
    B.add_transition act "writer" ~inputs:[ (q, 1) ]
      ~action:[ Expr.Assign ("x", Expr.int 1) ]
  in
  let act_net = B.build act in
  Alcotest.(check bool) "action net rejected" true
    (Stubborn.unsupported act_net <> None);
  (match Graph.build ~por:true act_net with
  | exception Stubborn.Unsupported r ->
    Alcotest.(check bool) "message mentions --por off" true
      (Testutil.contains (Stubborn.rejection_message r) "--por off")
  | _ -> Alcotest.fail "build ~por must raise Unsupported");
  (* the plain pipeline benchmark family is inside the fragment *)
  Alcotest.(check bool) "indep nets supported" true
    (Stubborn.unsupported (Pnut_pipeline.Indep.net ~pipelines:2 ~stages:2)
    = None)

(* the untimed paper model is plain: reduction applies and agrees *)
let test_prefetch_model_differential () =
  let net = Pnut_pipeline.Model.prefetch_only Pnut_pipeline.Config.default in
  Alcotest.(check bool) "prefetch net supported" true
    (Stubborn.unsupported net = None);
  let full = Graph.build net in
  let reduced = Graph.build ~por:true net in
  check_same_deadlocks "prefetch" full reduced;
  Alcotest.(check bool) "no more states than full" true
    (Graph.num_states reduced <= Graph.num_states full)

let () =
  Alcotest.run "por"
    [
      ( "indep",
        [
          Alcotest.test_case "reduction >= 5x with identical deadlocks"
            `Quick test_indep_reduction;
          Alcotest.test_case "deadlock is the final-slot marking" `Quick
            test_indep_deadlock_is_final_slots;
          Alcotest.test_case "name parsing" `Quick test_indep_parse_name;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "packed arrays identical across jobs" `Quick
            test_jobs_sweep_identical;
        ] );
      ( "budget",
        [ Alcotest.test_case "state cap degrades" `Quick test_budget_truncation ] );
      ( "fragment",
        [
          Alcotest.test_case "unsupported features rejected" `Quick
            test_unsupported;
          Alcotest.test_case "prefetch model agrees" `Quick
            test_prefetch_model_differential;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_differential ]);
    ]
