(* Tests for the fault-injection layer: spec parsing, each fault kind's
   effect on a running simulation, and the baseline-vs-faulty campaign. *)

module Net = Pnut_core.Net
module B = Net.Builder
module Sim = Pnut_sim.Simulator
module Trace = Pnut_trace.Trace
module Fault = Pnut_fault.Fault
module Campaign = Pnut_fault.Campaign

(* -- spec parsing -- *)

let spec_text =
  "# fault set for the prefetch pipeline\n\
   stuck End_prefetch from 100 until 500\n\
   drop Full_I_buffers 2 at 250\n\
   spurious Bus_free 1 at 300 every 50 until 600 p 0.5\n\
   delay-scale * factor 1.5 jitter 0.2 from 10\n"

let test_parse () =
  let specs = Fault.parse spec_text in
  Alcotest.(check int) "four specs" 4 (List.length specs);
  (match List.nth specs 0 with
  | {
   Fault.fs_kind = Fault.Stuck_transition "End_prefetch";
   fs_window = { w_from = 100.0; w_until = 500.0 };
   fs_probability = 1.0;
  } ->
    ()
  | _ -> Alcotest.fail "stuck spec mis-parsed");
  (match List.nth specs 1 with
  | { Fault.fs_kind = Fault.Drop_tokens { place = "Full_I_buffers"; count = 2; period = None }; _ }
    ->
    ()
  | _ -> Alcotest.fail "drop spec mis-parsed");
  (match List.nth specs 2 with
  | {
   Fault.fs_kind =
     Fault.Spurious_tokens { place = "Bus_free"; count = 1; period = Some 50.0 };
   fs_window = { w_from = 300.0; w_until = 600.0 };
   fs_probability = 0.5;
  } ->
    ()
  | _ -> Alcotest.fail "spurious spec mis-parsed");
  match List.nth specs 3 with
  | {
   Fault.fs_kind =
     Fault.Delay_scale { transition = None; factor = 1.5; jitter = 0.2 };
   fs_window = { w_from = 10.0; w_until };
   _;
  }
    when w_until = infinity ->
    ()
  | _ -> Alcotest.fail "delay-scale spec mis-parsed"

let test_parse_roundtrip () =
  (* printing a parsed spec and re-parsing it is the identity *)
  let specs = Fault.parse spec_text in
  List.iter
    (fun s ->
      let text = Format.asprintf "%a" Fault.pp_spec s in
      match Fault.parse text with
      | [ s' ] when s' = s -> ()
      | _ -> Alcotest.failf "round-trip failed for %S" text)
    specs

let check_parse_error ~line text =
  match Fault.parse text with
  | _ -> Alcotest.failf "expected a parse error for %S" text
  | exception Fault.Parse_error (l, _) ->
    Alcotest.(check int) "error line" line l

let test_parse_errors () =
  check_parse_error ~line:1 "teleport P 1";
  check_parse_error ~line:1 "drop P zero";
  check_parse_error ~line:1 "delay-scale T";
  check_parse_error ~line:1 "stuck T warp 1";
  check_parse_error ~line:2 "stuck T\ndrop P 1 every"

let stuck ?(window = Fault.always) ?(p = 1.0) name =
  { Fault.fs_kind = Fault.Stuck_transition name; fs_window = window;
    fs_probability = p }

let test_validate_unknown_names () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  (match Fault.validate net [ stuck "Warp_drive" ] with
  | () -> Alcotest.fail "expected a fault error"
  | exception Sim.Sim_error (Sim.Fault_error msg) ->
    Testutil.check_contains "names the culprit" msg "Warp_drive"
  | exception Sim.Sim_error e ->
    Alcotest.failf "wrong error: %s" (Sim.error_message e));
  match Fault.validate net [ stuck ~p:1.5 "Decode" ] with
  | () -> Alcotest.fail "expected a probability error"
  | exception Sim.Sim_error (Sim.Fault_error _) -> ()

(* -- fault kinds against a running simulation -- *)

(* a 1 Hz heartbeat: [beat] fires at t = 0, 1, 2, ... *)
let heartbeat () =
  let b = B.create "heartbeat" in
  let p = B.add_place b "p" ~initial:1 in
  let _ =
    B.add_transition b "beat" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ]
      ~firing:(Net.Const 1.0)
  in
  B.build b

let start_times trace =
  Array.to_list (Trace.deltas trace)
  |> List.filter (fun d -> d.Trace.d_kind = Trace.Fire_start)
  |> List.map (fun d -> d.Trace.d_time)

let test_stuck_transition () =
  let net = heartbeat () in
  let window = { Fault.w_from = 2.0; w_until = 5.0 } in
  let compiled =
    Fault.compile ~prng:(Pnut_core.Prng.create 1) net [ stuck ~window "beat" ]
  in
  let sink, get = Trace.collector () in
  let st = Sim.create ~sink ~hooks:(Fault.hooks compiled) net in
  let outcome = Sim.run ~until:8.0 st in
  (* the veto must not read as a deadlock: the wakeup hook carries the
     clock across the fault window *)
  Alcotest.(check bool) "reaches the horizon" true
    (outcome.Sim.stop = Sim.Horizon);
  let starts = start_times (get ()) in
  Alcotest.(check bool) "silent inside the window" true
    (List.for_all (fun t -> t < window.Fault.w_from || t >= window.Fault.w_until) starts);
  Alcotest.(check bool) "resumes at the window end" true
    (List.mem window.Fault.w_until starts)

(* a finite workload: [consume] drains [stock] at 1 Hz (enabling time, so
   firings are serialized), then the net dies *)
let workload init =
  let b = B.create "workload" in
  let stock = B.add_place b "stock" ~initial:init in
  let sunk = B.add_place b "sunk" in
  let _ =
    B.add_transition b "consume" ~inputs:[ (stock, 1) ] ~outputs:[ (sunk, 1) ]
      ~enabling:(Net.Const 1.0)
  in
  B.build b

let pulse kind place count at =
  let k =
    match kind with
    | `Drop -> Fault.Drop_tokens { place; count; period = None }
    | `Spurious -> Fault.Spurious_tokens { place; count; period = None }
  in
  { Fault.fs_kind = k; fs_window = { Fault.w_from = at; w_until = infinity };
    fs_probability = 1.0 }

let test_drop_tokens () =
  let report =
    Campaign.run ~seed:2 ~runs:1 ~until:20.0 ~observe:"consume"
      (workload 5)
      [ pulse `Drop "stock" 3 2.5 ]
  in
  let base = List.hd report.Campaign.cr_baseline in
  let faulty = List.hd report.Campaign.cr_faulty in
  (* at t = 2.5 the stock holds 3 tokens; all are stolen *)
  Alcotest.(check int) "tokens dropped" 3 report.Campaign.cr_tokens_dropped;
  Alcotest.(check int) "baseline drains everything" 5 base.Campaign.rr_started;
  Alcotest.(check int) "faulty loses the stolen work" 2 faulty.Campaign.rr_started;
  Alcotest.(check bool) "throughput degraded" true
    (faulty.Campaign.rr_throughput < base.Campaign.rr_throughput);
  match faulty.Campaign.rr_class with
  | Campaign.Deadlocked t ->
    Alcotest.(check bool) "died at the second firing" true (t <= 2.5);
    (match faulty.Campaign.rr_diagnosis with
    | Some d -> Testutil.check_contains "diagnosis names stock" d "stock"
    | None -> Alcotest.fail "deadlocked run should carry a diagnosis")
  | _ -> Alcotest.fail "expected the drained net to deadlock"

let test_spurious_tokens () =
  let report =
    Campaign.run ~seed:2 ~runs:1 ~until:20.0 ~observe:"consume"
      (workload 5)
      [ pulse `Spurious "stock" 4 2.5 ]
  in
  let base = List.hd report.Campaign.cr_baseline in
  let faulty = List.hd report.Campaign.cr_faulty in
  Alcotest.(check int) "tokens injected" 4 report.Campaign.cr_tokens_injected;
  Alcotest.(check int) "baseline work" 5 base.Campaign.rr_started;
  Alcotest.(check int) "injected work shows up" 9 faulty.Campaign.rr_started

let test_delay_scale_campaign () =
  (* the acceptance scenario: slow the pipeline's memory access down and
     measure the throughput hit against the fault-free baseline *)
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let spec =
    {
      Fault.fs_kind =
        Fault.Delay_scale
          { transition = Some "End_prefetch"; factor = 3.0; jitter = 0.1 };
      fs_window = Fault.always;
      fs_probability = 1.0;
    }
  in
  let report =
    Campaign.run ~seed:3 ~runs:3 ~until:2000.0 ~observe:"Decode" net [ spec ]
  in
  Alcotest.(check int) "three pairs" 3 (List.length report.Campaign.cr_faulty);
  Alcotest.(check bool) "memory 3x slower degrades throughput" true
    (Campaign.degradation report > 0.05);
  List.iter2
    (fun b f ->
      Alcotest.(check bool)
        (Printf.sprintf "run %d pairwise degraded" b.Campaign.rr_run)
        true
        (f.Campaign.rr_throughput < b.Campaign.rr_throughput))
    report.Campaign.cr_baseline report.Campaign.cr_faulty;
  (* the report renders with per-run rows and a summary *)
  let table = Campaign.render report in
  Testutil.check_contains "table names the net" table "pipeline3";
  Testutil.check_contains "table has a mean row" table "mean";
  let csv = Campaign.render_csv report in
  Alcotest.(check int) "csv rows" 4
    (List.length
       (String.split_on_char '\n' (String.trim csv)))

let test_activation_probability () =
  let net = heartbeat () in
  let prng = Pnut_core.Prng.create 1 in
  let off = Fault.compile ~prng net [ stuck ~p:0.0 "beat" ] in
  Alcotest.(check int) "p=0 never activates" 0
    (List.length (Fault.active_specs off));
  let on = Fault.compile ~prng net [ stuck ~p:1.0 "beat" ] in
  Alcotest.(check int) "p=1 always activates" 1
    (List.length (Fault.active_specs on))

let test_campaign_deterministic () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let specs = Fault.parse "delay-scale End_prefetch factor 2 jitter 0.3" in
  let go () =
    Campaign.render (Campaign.run ~seed:9 ~runs:2 ~until:500.0 net specs)
  in
  Alcotest.(check string) "same seed, same report" (go ()) (go ())

let () =
  Alcotest.run "fault"
    [
      ( "specs",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "round-trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "validation" `Quick test_validate_unknown_names;
          Alcotest.test_case "activation probability" `Quick
            test_activation_probability;
        ] );
      ( "kinds",
        [
          Alcotest.test_case "stuck transition" `Quick test_stuck_transition;
          Alcotest.test_case "drop tokens" `Quick test_drop_tokens;
          Alcotest.test_case "spurious tokens" `Quick test_spurious_tokens;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "delay-scale degradation" `Slow
            test_delay_scale_campaign;
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
        ] );
    ]
