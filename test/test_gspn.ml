(* Tests for the analytical (GSPN / CTMC) performance evaluator, checked
   against closed-form Markov results and against the simulator. *)

module Net = Pnut_core.Net
module B = Net.Builder
module Gspn = Pnut_analytic.Gspn
module Sim = Pnut_sim.Simulator
module Stat = Pnut_stat.Stat

(* Two-state machine: free -> busy at rate lambda, busy -> free at rate
   mu.  Closed form: P(busy) = lambda / (lambda + mu). *)
let machine ~lambda ~mu =
  let b = B.create "machine" in
  let free = B.add_place b "free" ~initial:1 in
  let busy = B.add_place b "busy" in
  let _ =
    B.add_transition b "start" ~inputs:[ (free, 1) ] ~outputs:[ (busy, 1) ]
      ~enabling:(Net.Exponential (1.0 /. lambda))
  in
  let _ =
    B.add_transition b "finish" ~inputs:[ (busy, 1) ] ~outputs:[ (free, 1) ]
      ~enabling:(Net.Exponential (1.0 /. mu))
  in
  B.build b

let test_two_state_machine () =
  let lambda = 2.0 and mu = 3.0 in
  let net = machine ~lambda ~mu in
  let r = Gspn.analyze net in
  Alcotest.(check int) "two tangible states" 2 r.Gspn.tangible_states;
  Alcotest.(check int) "no vanishing states" 0 r.Gspn.vanishing_states;
  let expected = lambda /. (lambda +. mu) in
  Testutil.check_close ~tolerance:1e-9 "P(busy)" expected
    (Gspn.place_mean r net "busy");
  Testutil.check_close ~tolerance:1e-9 "P(free)" (1.0 -. expected)
    (Gspn.place_mean r net "free");
  (* flow balance: both transitions fire at the same rate
     lambda * P(free) *)
  let flow = lambda *. (1.0 -. expected) in
  Testutil.check_close ~tolerance:1e-9 "start throughput" flow
    (Gspn.throughput r net "start");
  Testutil.check_close ~tolerance:1e-9 "finish throughput" flow
    (Gspn.throughput r net "finish")

(* M/M/1/K queue: arrivals rate lambda (blocked when full), service rate
   mu.  Closed form: pi_n = rho^n * (1-rho)/(1-rho^{K+1}). *)
let mm1k ~lambda ~mu ~k =
  let b = B.create "mm1k" in
  let slots = B.add_place b "slots" ~initial:k in
  let queue = B.add_place b "queue" in
  let _ =
    B.add_transition b "arrive" ~inputs:[ (slots, 1) ] ~outputs:[ (queue, 1) ]
      ~enabling:(Net.Exponential (1.0 /. lambda))
  in
  let _ =
    B.add_transition b "serve" ~inputs:[ (queue, 1) ] ~outputs:[ (slots, 1) ]
      ~enabling:(Net.Exponential (1.0 /. mu))
  in
  B.build b

let mm1k_mean_queue ~rho ~k =
  (* sum n rho^n / sum rho^n for n in 0..k *)
  let num = ref 0.0 and den = ref 0.0 in
  for n = 0 to k do
    let p = rho ** float_of_int n in
    num := !num +. (float_of_int n *. p);
    den := !den +. p
  done;
  !num /. !den

let test_mm1k_queue () =
  let lambda = 1.0 and mu = 1.5 and k = 5 in
  let net = mm1k ~lambda ~mu ~k in
  let r = Gspn.analyze net in
  Alcotest.(check int) "k+1 states" (k + 1) r.Gspn.tangible_states;
  let rho = lambda /. mu in
  Testutil.check_close ~tolerance:1e-9 "mean queue length"
    (mm1k_mean_queue ~rho ~k)
    (Gspn.place_mean r net "queue");
  (* loss system throughput: mu * P(queue > 0) = lambda * P(not full) *)
  let p_n n =
    let den = ref 0.0 in
    for i = 0 to k do
      den := !den +. (rho ** float_of_int i)
    done;
    (rho ** float_of_int n) /. !den
  in
  Testutil.check_close ~tolerance:1e-9 "served throughput"
    (mu *. (1.0 -. p_n 0))
    (Gspn.throughput r net "serve");
  Testutil.check_close ~tolerance:1e-9 "accepted = served"
    (Gspn.throughput r net "arrive")
    (Gspn.throughput r net "serve")

(* Immediate transitions and vanishing states: exponential source, then
   an immediate probabilistic split 3:1. *)
let split_net () =
  let b = B.create "split" in
  let src = B.add_place b "src" ~initial:1 in
  let mid = B.add_place b "mid" in
  let left = B.add_place b "left" in
  let right = B.add_place b "right" in
  let _ =
    B.add_transition b "produce" ~inputs:[ (src, 1) ] ~outputs:[ (mid, 1) ]
      ~enabling:(Net.Exponential 2.0)
  in
  let _ =
    B.add_transition b "go_left" ~inputs:[ (mid, 1) ] ~outputs:[ (left, 1) ]
      ~frequency:3.0
  in
  let _ =
    B.add_transition b "go_right" ~inputs:[ (mid, 1) ] ~outputs:[ (right, 1) ]
      ~frequency:1.0
  in
  let _ =
    B.add_transition b "drain_left" ~inputs:[ (left, 1) ] ~outputs:[ (src, 1) ]
      ~enabling:(Net.Exponential 1.0)
  in
  let _ =
    B.add_transition b "drain_right" ~inputs:[ (right, 1) ] ~outputs:[ (src, 1) ]
      ~enabling:(Net.Exponential 1.0)
  in
  B.build b

let test_vanishing_split () =
  let net = split_net () in
  let r = Gspn.analyze net in
  Alcotest.(check bool) "has vanishing states" true (r.Gspn.vanishing_states > 0);
  (* immediate throughputs split 3:1 and sum to the producer's rate *)
  let tp = Gspn.throughput r net "produce" in
  let tl = Gspn.throughput r net "go_left" in
  let tr_ = Gspn.throughput r net "go_right" in
  Testutil.check_close ~tolerance:1e-9 "split sums" tp (tl +. tr_);
  Testutil.check_close ~tolerance:1e-9 "3:1 ratio" (3.0 *. tr_) tl;
  (* closed form: cycle = produce (mean 2) then drain (mean 1), so
     produce throughput = 1/3 *)
  Testutil.check_close ~tolerance:1e-9 "cycle rate" (1.0 /. 3.0) tp

let test_chained_vanishing () =
  (* two immediate transitions in a row (vanishing -> vanishing) *)
  let b = B.create "chain" in
  let a = B.add_place b "a" ~initial:1 in
  let v1 = B.add_place b "v1" in
  let v2 = B.add_place b "v2" in
  let z = B.add_place b "z" in
  let _ =
    B.add_transition b "slow" ~inputs:[ (a, 1) ] ~outputs:[ (v1, 1) ]
      ~enabling:(Net.Exponential 1.0)
  in
  let _ = B.add_transition b "hop1" ~inputs:[ (v1, 1) ] ~outputs:[ (v2, 1) ] in
  let _ = B.add_transition b "hop2" ~inputs:[ (v2, 1) ] ~outputs:[ (z, 1) ] in
  let _ =
    B.add_transition b "back" ~inputs:[ (z, 1) ] ~outputs:[ (a, 1) ]
      ~enabling:(Net.Exponential 1.0)
  in
  let net = B.build b in
  let r = Gspn.analyze net in
  (* cycle time 2, every transition fires at rate 1/2 *)
  List.iter
    (fun name ->
      Testutil.check_close ~tolerance:1e-9 (name ^ " rate") 0.5
        (Gspn.throughput r net name))
    [ "slow"; "hop1"; "hop2"; "back" ];
  (* vanishing states hold no probability mass: a + z means sum to 1 *)
  Testutil.check_close ~tolerance:1e-9 "mass on tangible markings" 1.0
    (Gspn.place_mean r net "a" +. Gspn.place_mean r net "z")

let test_absorbing_net () =
  (* one-shot net: all mass ends in the dead marking *)
  let b = B.create "oneshot" in
  let p = B.add_place b "p" ~initial:1 in
  let q = B.add_place b "q" in
  let _ =
    B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (q, 1) ]
      ~enabling:(Net.Exponential 1.0)
  in
  let net = B.build b in
  let r = Gspn.analyze net in
  Testutil.check_close ~tolerance:1e-6 "stationary mass at q" 1.0
    (Gspn.place_mean r net "q");
  Testutil.check_close ~tolerance:1e-6 "throughput dies" 0.0
    (Gspn.throughput r net "t")

let test_rejections () =
  let deterministic =
    let b = B.create "det" in
    let p = B.add_place b "p" ~initial:1 in
    let _ =
      B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ]
        ~firing:(Net.Const 1.0)
    in
    B.build b
  in
  (match Gspn.analyze deterministic with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument msg ->
    Testutil.check_contains "message" msg "non-exponential");
  let exponential_firing =
    let b = B.create "expf" in
    let p = B.add_place b "p" ~initial:1 in
    let _ =
      B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ]
        ~firing:(Net.Exponential 1.0)
    in
    B.build b
  in
  (match Gspn.analyze exponential_firing with
  | _ -> Alcotest.fail "expected rejection"
  | exception Invalid_argument msg ->
    Testutil.check_contains "message" msg "exponential firing time");
  let unbounded =
    let b = B.create "unb" in
    let p = B.add_place b "p" ~initial:1 in
    let q = B.add_place b "q" in
    let _ =
      B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1); (q, 1) ]
        ~enabling:(Net.Exponential 1.0)
    in
    B.build b
  in
  match Gspn.analyze ~max_states:50 unbounded with
  | _ -> Alcotest.fail "expected state cap"
  | exception Gspn.Too_many_states r ->
    Alcotest.(check int) "explored states reported" 50 r.Gspn.rj_explored;
    Alcotest.(check int) "cap reported" 50 r.Gspn.rj_cap;
    Testutil.check_contains "message" (Gspn.rejection_message r) "max_states"

let test_exponential_variant_rebuild () =
  (* a Choice delay has no single exponential equivalent: rejected *)
  let choicy =
    let b = B.create "choicy" in
    let p = B.add_place b "p" ~initial:1 in
    let _ =
      B.add_transition b "t" ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ]
        ~firing:(Net.Choice [ (1.0, 0.5); (2.0, 0.5) ])
    in
    B.build b
  in
  (match Gspn.exponential_variant choicy with
  | _ -> Alcotest.fail "expected rejection of Choice delays"
  | exception Invalid_argument msg ->
    Testutil.check_contains "message" msg "unsupported delay shape");
  (* a deterministic-delay net converts cleanly *)
  let simple = Pnut_pipeline.Model.prefetch_only Pnut_pipeline.Config.default in
  let exp_net = Gspn.exponential_variant simple in
  Alcotest.(check int) "same places" (Net.num_places simple) (Net.num_places exp_net);
  Alcotest.(check int) "same transitions" (Net.num_transitions simple)
    (Net.num_transitions exp_net);
  let ep = Net.transition exp_net (Net.transition_id exp_net "End_prefetch") in
  Alcotest.(check bool) "delay became exponential" true
    (ep.Net.t_enabling = Net.Exponential 5.0)

(* the full pipeline is all-Const: the exponential variant is analyzable
   exactly, and the analytic answer matches a long simulation *)
let test_full_pipeline_analytic () =
  let net =
    Gspn.exponential_variant (Pnut_pipeline.Model.full Pnut_pipeline.Config.default)
  in
  let r = Gspn.analyze ~max_states:5000 net in
  Alcotest.(check bool) "nontrivial state space" true (r.Gspn.tangible_states > 50);
  let sink, get = Stat.sink () in
  let _ = Sim.simulate ~seed:11 ~until:300_000.0 ~sink net in
  let sim = get () in
  let compare name =
    let analytic = Gspn.place_mean r net name in
    let simulated = Stat.utilization sim name in
    Alcotest.(check bool)
      (Printf.sprintf "%s: analytic %.4f vs simulated %.4f" name analytic simulated)
      true
      (Float.abs (analytic -. simulated) < 0.03 *. Float.max 1.0 analytic)
  in
  List.iter compare [ "Bus_busy"; "Execution_unit"; "Full_I_buffers" ];
  let thr_a = Gspn.throughput r net "Issue" in
  let thr_s = Stat.throughput sim "Issue" in
  Alcotest.(check bool)
    (Printf.sprintf "Issue rate: analytic %.4f vs simulated %.4f" thr_a thr_s)
    true
    (Float.abs (thr_a -. thr_s) /. thr_a < 0.04)

(* cross-validation: the analytic answer matches a long simulation of the
   same exponential net *)
let test_analytic_matches_simulation () =
  let net =
    Gspn.exponential_variant
      (Pnut_pipeline.Model.prefetch_only Pnut_pipeline.Config.default)
  in
  let r = Gspn.analyze net in
  let sink, get = Stat.sink () in
  let _ = Sim.simulate ~seed:42 ~until:200_000.0 ~sink net in
  let sim = get () in
  let compare name =
    let analytic = Gspn.place_mean r net name in
    let simulated = Stat.utilization sim name in
    Alcotest.(check bool)
      (Printf.sprintf "%s: analytic %.4f vs simulated %.4f" name analytic simulated)
      true
      (Float.abs (analytic -. simulated) < 0.02 *. Float.max 1.0 analytic)
  in
  List.iter compare [ "Bus_busy"; "Full_I_buffers"; "Decoder_ready"; "pre_fetching" ];
  let thr_a = Gspn.throughput r net "Decode" in
  let thr_s = Stat.throughput sim "Decode" in
  Alcotest.(check bool)
    (Printf.sprintf "Decode rate: %.4f vs %.4f" thr_a thr_s)
    true
    (Float.abs (thr_a -. thr_s) /. thr_a < 0.03)

let () =
  Alcotest.run "gspn"
    [
      ( "closed-form",
        [
          Alcotest.test_case "two-state machine" `Quick test_two_state_machine;
          Alcotest.test_case "M/M/1/K" `Quick test_mm1k_queue;
          Alcotest.test_case "vanishing split" `Quick test_vanishing_split;
          Alcotest.test_case "chained vanishing" `Quick test_chained_vanishing;
          Alcotest.test_case "absorbing" `Quick test_absorbing_net;
        ] );
      ( "interface",
        [
          Alcotest.test_case "rejections" `Quick test_rejections;
          Alcotest.test_case "exponential variant" `Quick
            test_exponential_variant_rebuild;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "matches simulation" `Slow
            test_analytic_matches_simulation;
          Alcotest.test_case "full pipeline" `Slow test_full_pipeline_analytic;
        ] );
    ]
