(* Tests for trace representation, codec round-trips, sinks and filtering. *)

module Trace = Pnut_trace.Trace
module Codec = Pnut_trace.Codec
module Binary = Pnut_trace.Binary
module Filter = Pnut_trace.Filter
module Value = Pnut_core.Value

let sample_header () =
  {
    Trace.h_net = "demo";
    h_places = [| "p"; "q"; "r" |];
    h_transitions = [| "t"; "u" |];
    h_initial = [| 2; 0; 1 |];
    h_variables = [ ("n", Value.Int 3); ("x", Value.Float 1.5); ("b", Value.Bool true) ];
  }

let sample_trace () =
  let d1 =
    {
      Trace.d_time = 1.0;
      d_kind = Trace.Fire_start;
      d_transition = 0;
      d_firing = 0;
      d_marking = [ (0, -1) ];
      d_env = [];
    }
  in
  let d2 =
    {
      Trace.d_time = 3.5;
      d_kind = Trace.Fire_end;
      d_transition = 0;
      d_firing = 0;
      d_marking = [ (1, 1) ];
      d_env = [ ("n", Value.Int 2) ];
    }
  in
  let d3 =
    {
      Trace.d_time = 4.0;
      d_kind = Trace.Fire_start;
      d_transition = 1;
      d_firing = 1;
      d_marking = [ (1, -1); (2, -1) ];
      d_env = [];
    }
  in
  Trace.make (sample_header ()) [ d1; d2; d3 ] 10.0

let test_accessors () =
  let tr = sample_trace () in
  Alcotest.(check int) "length" 3 (Trace.length tr);
  Alcotest.(check (float 0.0)) "final time" 10.0 (Trace.final_time tr);
  Alcotest.(check string) "net name" "demo" (Trace.header tr).Trace.h_net

let test_states_reconstruction () =
  let tr = sample_trace () in
  let states = Trace.states tr in
  Alcotest.(check int) "n+1 states" 4 (Array.length states);
  let _, s0 = states.(0) in
  Alcotest.(check (array int)) "initial" [| 2; 0; 1 |] s0;
  let t1, s1 = states.(1) in
  Alcotest.(check (float 0.0)) "time 1" 1.0 t1;
  Alcotest.(check (array int)) "after d1" [| 1; 0; 1 |] s1;
  let _, s3 = states.(3) in
  Alcotest.(check (array int)) "after d3" [| 1; 0; 0 |] s3

let test_marking_after_and_state_at () =
  let tr = sample_trace () in
  Alcotest.(check (array int)) "after 0" [| 2; 0; 1 |] (Trace.marking_after tr 0);
  Alcotest.(check (array int)) "after 2" [| 1; 1; 1 |] (Trace.marking_after tr 2);
  Alcotest.(check (array int)) "state at 2.0" [| 1; 0; 1 |] (Trace.state_at tr 2.0);
  Alcotest.(check (array int)) "state at 3.5" [| 1; 1; 1 |] (Trace.state_at tr 3.5);
  Alcotest.(check (array int)) "state before any delta" [| 2; 0; 1 |]
    (Trace.state_at tr 0.5);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Trace.marking_after: index out of range") (fun () ->
      ignore (Trace.marking_after tr 9))

let test_env_after () =
  let tr = sample_trace () in
  Alcotest.(check bool) "initial n" true
    (List.assoc "n" (Trace.env_after tr 0) = Value.Int 3);
  Alcotest.(check bool) "updated n" true
    (List.assoc "n" (Trace.env_after tr 2) = Value.Int 2);
  Alcotest.(check bool) "floats kept" true
    (List.assoc "x" (Trace.env_after tr 2) = Value.Float 1.5)

let test_in_flight_after () =
  let tr = sample_trace () in
  Alcotest.(check (array int)) "none initially" [| 0; 0 |] (Trace.in_flight_after tr 0);
  Alcotest.(check (array int)) "t in flight" [| 1; 0 |] (Trace.in_flight_after tr 1);
  Alcotest.(check (array int)) "t done" [| 0; 0 |] (Trace.in_flight_after tr 2);
  Alcotest.(check (array int)) "u in flight" [| 0; 1 |] (Trace.in_flight_after tr 3)

let test_collector_and_replay () =
  let tr = sample_trace () in
  let sink, get = Trace.collector () in
  Trace.replay tr sink;
  let copy = get () in
  Alcotest.(check string) "replay reproduces" (Codec.to_string tr)
    (Codec.to_string copy)

let test_collector_incomplete () =
  let _, get = Trace.collector () in
  Alcotest.check_raises "no header"
    (Invalid_argument "Trace.collector: no header received") (fun () ->
      ignore (get ()))

let test_tee () =
  let tr = sample_trace () in
  let s1, get1 = Trace.collector () in
  let s2, get2 = Trace.collector () in
  Trace.replay tr (Trace.tee [ s1; s2 ]);
  Alcotest.(check string) "both sinks fed" (Codec.to_string (get1 ()))
    (Codec.to_string (get2 ()))

(* -- codec -- *)

let test_codec_roundtrip () =
  let tr = sample_trace () in
  let text = Codec.to_string tr in
  let back = Codec.parse text in
  Alcotest.(check string) "round trip" text (Codec.to_string back)

let test_codec_float_precision () =
  let header = { (sample_header ()) with Trace.h_variables = [] } in
  let d =
    {
      Trace.d_time = 0.1 +. 0.2;  (* not representable exactly *)
      d_kind = Trace.Fire_start;
      d_transition = 0;
      d_firing = 0;
      d_marking = [];
      d_env = [ ("v", Value.Float 1.0e-17) ];
    }
  in
  let tr = Trace.make header [ d ] 1000000.25 in
  let back = Codec.parse (Codec.to_string tr) in
  let d' = (Trace.deltas back).(0) in
  Alcotest.(check (float 0.0)) "time exact" (0.1 +. 0.2) d'.Trace.d_time;
  Alcotest.(check bool) "tiny float exact" true
    (List.assoc "v" d'.Trace.d_env = Value.Float 1.0e-17)

let test_codec_foreign_trace () =
  (* a hand-written trace, as a SIMSCRIPT-style external producer would
     emit (the paper stresses the format is tool-agnostic) *)
  let text =
    String.concat "\n"
      [
        "%pnut-trace 1";
        "net external";
        "place 0 queue 5";
        "transition 0 serve";
        "var load f0.5";
        "begin";
        "@ 2 S 0 0 ; 0:-1";
        "@ 4 E 0 0 ; 0:1 ; load=f0.75";
        "end 10";
      ]
  in
  let tr = Codec.parse text in
  Alcotest.(check int) "deltas" 2 (Trace.length tr);
  Alcotest.(check (array int)) "marking applies" [| 5 |] (Trace.marking_after tr 2);
  Alcotest.(check bool) "env parsed" true
    (List.assoc "load" (Trace.env_after tr 2) = Value.Float 0.75)

let test_codec_errors () =
  let expect_error text fragment =
    match Codec.parse text with
    | _ -> Alcotest.failf "expected parse error for %S" fragment
    | exception Codec.Parse_error (_, msg) ->
      Testutil.check_contains "message" msg fragment
  in
  expect_error "%pnut-trace 2\nnet x\nbegin\nend 1" "unsupported trace version";
  expect_error "net x\nbegin\n@ 1 Q 0 0\nend 1" "bad event kind";
  expect_error "net x\nbegin\nend 1\njunk" "unexpected body line";
  expect_error "net x\nbegin\n@ 1 S 0\nend 1" "bad delta header";
  expect_error "begin\nend 1" "missing net line";
  expect_error "net x\nbegin" "missing end line";
  expect_error "net x\nplace 1 late 0\nbegin\nend 1" "ids not contiguous"

let test_writer_sink_streams () =
  let tr = sample_trace () in
  let buf = Buffer.create 256 in
  Trace.replay tr (Codec.writer_sink buf);
  Alcotest.(check string) "streaming write equals batch write"
    (Codec.to_string tr) (Buffer.contents buf)

let sim_trace () =
  let net = Pnut_pipeline.Model.full Pnut_pipeline.Config.default in
  let tr, _ = Pnut_sim.Simulator.trace ~seed:3 ~until:300.0 net in
  tr

(* -- name escaping (regression: the text format used to alias names
   containing its own separators) -- *)

let adversarial_header () =
  {
    Trace.h_net = "net with spaces";
    h_places = [| "a b"; "c;d"; "e:f" |];
    h_transitions = [| "g=h"; "p%q"; "caf\xc3\xa9" |];
    h_initial = [| 2; 0; 1 |];
    h_variables = [ ("v w", Value.Int 3); ("x=y", Value.Float 0.5) ];
  }

let adversarial_trace () =
  let d =
    {
      Trace.d_time = 1.0;
      d_kind = Trace.Fire_end;
      d_transition = 0;
      d_firing = 0;
      d_marking = [ (0, -1); (1, 1) ];
      d_env = [ ("v w", Value.Int 4); ("x=y", Value.Float 1.5) ];
    }
  in
  Trace.make (adversarial_header ()) [ d ] 5.0

let check_header_equal what (a : Trace.header) (b : Trace.header) =
  Alcotest.(check string) (what ^ " net") a.Trace.h_net b.Trace.h_net;
  Alcotest.(check (array string)) (what ^ " places") a.Trace.h_places b.Trace.h_places;
  Alcotest.(check (array string)) (what ^ " transitions") a.Trace.h_transitions
    b.Trace.h_transitions

let test_codec_escapes_names () =
  let tr = adversarial_trace () in
  let back = Codec.parse (Codec.to_string tr) in
  check_header_equal "text" (Trace.header tr) (Trace.header back);
  let d = (Trace.deltas back).(0) in
  Alcotest.(check bool) "env names survive" true
    (List.assoc "v w" d.Trace.d_env = Value.Int 4
    && List.assoc "x=y" d.Trace.d_env = Value.Float 1.5);
  Alcotest.(check bool) "marking survives" true
    (d.Trace.d_marking = [ (0, -1); (1, 1) ])

let test_codec_empty_name_rejected () =
  let header = { (sample_header ()) with Trace.h_net = "" } in
  let tr = Trace.make header [] 1.0 in
  Alcotest.check_raises "empty name"
    (Invalid_argument "Codec: empty names cannot be written to a text trace")
    (fun () -> ignore (Codec.to_string tr))

let test_codec_bad_escape () =
  let expect_error text fragment =
    match Codec.parse text with
    | _ -> Alcotest.failf "expected parse error for %S" fragment
    | exception Codec.Parse_error (_, msg) ->
      Testutil.check_contains "message" msg fragment
  in
  expect_error "net x%ZZ\nbegin\nend 1" "bad escape digit";
  expect_error "net x%2\nbegin\nend 1" "truncated %-escape";
  (* a raw space in a name cannot parse as a well-formed header line *)
  expect_error "net x\nplace 0 my name 0\nbegin\nend 1" "unexpected header line"

(* -- incremental reader -- *)

let test_incremental_reader () =
  let tr = sample_trace () in
  let text = Codec.to_string tr in
  let sink, get = Trace.collector () in
  let r = Codec.reader sink in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line -> if not (Codec.finished r) then Codec.feed_line r line)
    lines;
  Alcotest.(check bool) "finished" true (Codec.finished r);
  Alcotest.(check string) "incremental = batch" text (Codec.to_string (get ()))

(* -- binary codec -- *)

let test_binary_roundtrip () =
  let tr = sample_trace () in
  let bin = Binary.to_string tr in
  Alcotest.(check string) "magic" Binary.magic (String.sub bin 0 9);
  let back = Binary.parse bin in
  Alcotest.(check string) "round trip via text render" (Codec.to_string tr)
    (Codec.to_string back);
  (* non-integral time steps take the raw-double escape path *)
  let header = { (sample_header ()) with Trace.h_variables = [] } in
  let d =
    {
      Trace.d_time = 0.1 +. 0.2;
      d_kind = Trace.Fire_start;
      d_transition = 0;
      d_firing = 0;
      d_marking = [];
      d_env = [ ("v", Value.Float 1.0e-17) ];
    }
  in
  let tr = Trace.make header [ d ] 1000000.25 in
  let back = Binary.parse (Binary.to_string tr) in
  let d' = (Trace.deltas back).(0) in
  Alcotest.(check (float 0.0)) "escape-path time exact" (0.1 +. 0.2)
    d'.Trace.d_time;
  Alcotest.(check bool) "tiny float exact" true
    (List.assoc "v" d'.Trace.d_env = Value.Float 1.0e-17)

let test_binary_adversarial_names () =
  let tr = adversarial_trace () in
  let back = Binary.parse (Binary.to_string tr) in
  check_header_equal "binary" (Trace.header tr) (Trace.header back);
  (* the binary format is length-prefixed, so even an empty name (which
     the text codec must reject) survives *)
  let header = { (sample_header ()) with Trace.h_net = "" } in
  let tr = Trace.make header [] 1.0 in
  Alcotest.(check string) "empty name round-trips" ""
    (Trace.header (Binary.parse (Binary.to_string tr))).Trace.h_net

let test_binary_cross_conversion () =
  let tr = sim_trace () in
  let via_binary = Binary.parse (Binary.to_string tr) in
  Alcotest.(check string) "text(trace) = text(binary round trip)"
    (Codec.to_string tr) (Codec.to_string via_binary);
  Alcotest.(check bool) "binary is much smaller" true
    (2 * String.length (Binary.to_string tr)
    < String.length (Codec.to_string tr))

let test_binary_errors () =
  let expect_error bytes fragment =
    match Binary.parse bytes with
    | _ -> Alcotest.failf "expected binary parse error for %s" fragment
    | exception Binary.Parse_error (_, msg) ->
      Testutil.check_contains "message" msg fragment
  in
  expect_error "not binary at all" "bad magic";
  expect_error (Binary.magic ^ "\x02") "unsupported binary trace version";
  let good = Binary.to_string (sample_trace ()) in
  expect_error (String.sub good 0 (String.length good - 3))
    "unexpected end of binary trace"

let test_auto_detection () =
  let tr = sample_trace () in
  let via tmp contents =
    let oc = open_out_bin tmp in
    output_string oc contents;
    close_out oc;
    let ic = open_in_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Codec.read_channel ic)
  in
  let tmp = Filename.temp_file "pnut_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let from_bin = via tmp (Binary.to_string tr) in
      let from_text = via tmp (Codec.to_string tr) in
      Alcotest.(check string) "binary detected" (Codec.to_string tr)
        (Codec.to_string from_bin);
      Alcotest.(check string) "text detected" (Codec.to_string tr)
        (Codec.to_string from_text))

(* -- filter -- *)

let test_filter_identity () =
  let tr = sample_trace () in
  let filtered = Filter.apply Filter.all tr in
  Alcotest.(check string) "identity" (Codec.to_string tr)
    (Codec.to_string filtered)

let test_filter_places_renumbered () =
  let tr = sample_trace () in
  let spec = Filter.make_spec ~places:[ "q" ] ~transitions:[ "t"; "u" ] () in
  let filtered = Filter.apply spec tr in
  let h = Trace.header filtered in
  Alcotest.(check (array string)) "only q" [| "q" |] h.Trace.h_places;
  Alcotest.(check (array int)) "initial renumbered" [| 0 |] h.Trace.h_initial;
  (* marking changes now reference the renumbered place 0 *)
  let d2 = (Trace.deltas filtered).(1) in
  Alcotest.(check bool) "delta remapped" true (d2.Trace.d_marking = [ (0, 1) ])

let test_filter_drops_empty_deltas () =
  let tr = sample_trace () in
  (* keep only place r and transition u: d1/d2 (about t, p, q) vanish
     except d2's... d2 touches q only, so it is dropped entirely *)
  let spec = Filter.make_spec ~places:[ "r" ] ~transitions:[ "u" ] ~vars:false () in
  let filtered = Filter.apply spec tr in
  Alcotest.(check int) "only u's delta remains" 1 (Trace.length filtered)

let test_filter_orphan_attribution () =
  let tr = sample_trace () in
  (* keep place q but drop all transitions: q's changes must survive,
     attributed to the _filtered pseudo-transition *)
  let spec = Filter.make_spec ~places:[ "q" ] ~transitions:[] () in
  let filtered = Filter.apply spec tr in
  let h = Trace.header filtered in
  Alcotest.(check bool) "_filtered present" true
    (Array.exists (fun n -> n = "_filtered") h.Trace.h_transitions);
  Alcotest.(check bool) "q signal exact" true
    (Trace.marking_after filtered (Trace.length filtered) = [| 0 |])

let test_filter_preserves_place_signals () =
  let tr = sim_trace () in
  let spec = Filter.make_spec ~places:[ "Bus_busy" ] ~transitions:[] () in
  let filtered = Filter.apply spec tr in
  (* the Bus_busy time series must be identical before and after *)
  let busy_before =
    let h = Trace.header tr in
    let rec find i = if h.Trace.h_places.(i) = "Bus_busy" then i else find (i + 1) in
    find 0
  in
  let samples = [ 0.0; 10.0; 55.5; 100.0; 250.0 ] in
  List.iter
    (fun t ->
      Alcotest.(check int)
        (Printf.sprintf "Bus_busy at %g" t)
        (Trace.state_at tr t).(busy_before)
        (Trace.state_at filtered t).(0))
    samples;
  (* and the filtered trace is much smaller *)
  Alcotest.(check bool) "smaller" true
    (String.length (Codec.to_string filtered)
    < String.length (Codec.to_string tr))

let test_filter_balanced_accounting () =
  (* regression: orphaned deltas used to keep their original S/E kinds,
     so [_filtered] could see an E with no matching S and stat reported
     negative concurrency *)
  let tr = sim_trace () in
  let spec = Filter.make_spec ~transitions:[ "Start_memory" ] () in
  let filtered = Filter.apply spec tr in
  let report = Pnut_stat.Stat.of_trace filtered in
  let other = Pnut_stat.Stat.transition report "_filtered" in
  Alcotest.(check bool) "concurrency never negative" true
    (other.Pnut_stat.Stat.ts_min >= 0);
  Alcotest.(check int) "starts balance ends" other.Pnut_stat.Stat.ts_starts
    other.Pnut_stat.Stat.ts_ends;
  (* place signals are still exact *)
  let h = Trace.header tr in
  let bus =
    let rec find i = if h.Trace.h_places.(i) = "Bus_busy" then i else find (i + 1) in
    find 0
  in
  let bus' =
    let h' = Trace.header filtered in
    let rec find i = if h'.Trace.h_places.(i) = "Bus_busy" then i else find (i + 1) in
    find 0
  in
  List.iter
    (fun t ->
      Alcotest.(check int)
        (Printf.sprintf "Bus_busy at %g" t)
        (Trace.state_at tr t).(bus)
        (Trace.state_at filtered t).(bus'))
    [ 0.0; 42.0; 133.5; 299.0 ]

let test_filter_streaming_matches_batch () =
  let tr = sim_trace () in
  let spec =
    Filter.make_spec ~places:[ "Bus_busy"; "Bus_free" ]
      ~transitions:[ "Start_prefetch"; "End_prefetch" ] ()
  in
  let sink, get = Trace.collector () in
  Trace.replay tr (Filter.sink spec sink);
  Alcotest.(check string) "streaming = batch"
    (Codec.to_string (Filter.apply spec tr))
    (Codec.to_string (get ()))

(* property: codec round-trips arbitrary well-formed traces *)
let gen_trace =
  QCheck2.Gen.(
    let gen_delta =
      map2
        (fun time bits ->
          {
            Trace.d_time = float_of_int time;
            d_kind = (if bits land 1 = 0 then Trace.Fire_start else Trace.Fire_end);
            d_transition = (bits lsr 1) land 1;
            d_firing = bits lsr 2;
            d_marking = [ (bits mod 3, (bits mod 5) - 2) ];
            d_env = (if bits land 4 = 0 then [] else [ ("v", Value.Int bits) ]);
          })
        (int_range 0 100) (int_range 0 63)
    in
    map (fun deltas ->
        let sorted =
          List.sort (fun a b -> Float.compare a.Trace.d_time b.Trace.d_time) deltas
        in
        Trace.make (sample_header ()) sorted 200.0)
      (list_size (int_range 0 40) gen_delta))

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec round-trips arbitrary traces" ~count:100
    gen_trace (fun tr ->
      let text = Codec.to_string tr in
      String.equal text (Codec.to_string (Codec.parse text)))

(* property: both codecs round-trip traces whose names are built from the
   format's own separators and other adversarial bytes *)
let gen_adversarial_trace =
  QCheck2.Gen.(
    let fragment =
      oneofl
        [ "a"; " "; ";"; ":"; "="; "%"; "%2"; "@"; "#"; "\t"; "caf\xc3\xa9";
          "end"; "place" ]
    in
    let gen_name =
      map (fun parts -> String.concat "" parts)
        (list_size (int_range 1 4) fragment)
    in
    let gen_delta name =
      map2
        (fun time bits ->
          {
            Trace.d_time = float_of_int time /. 4.0;
            d_kind = (if bits land 1 = 0 then Trace.Fire_start else Trace.Fire_end);
            d_transition = bits land 1;
            d_firing = bits lsr 2;
            d_marking = (if bits land 2 = 0 then [] else [ (bits mod 2, (bits mod 5) - 2) ]);
            d_env = (if bits land 4 = 0 then [] else [ (name, Value.Int bits) ]);
          })
        (int_range 0 400) (int_range 0 63)
    in
    gen_name >>= fun vname ->
    map2
      (fun names deltas ->
        let header =
          match names with
          | [ net; p1; p2; t1; t2 ] ->
            {
              Trace.h_net = net;
              h_places = [| p1; p2 |];
              h_transitions = [| t1; t2 |];
              h_initial = [| 1; 0 |];
              h_variables = [ (vname, Value.Int 0) ];
            }
          | _ -> assert false
        in
        let sorted =
          List.sort (fun a b -> Float.compare a.Trace.d_time b.Trace.d_time)
            deltas
        in
        Trace.make header sorted 200.0)
      (list_repeat 5 gen_name)
      (list_size (int_range 0 30) (gen_delta vname)))

let structurally_equal a b =
  Trace.header a = Trace.header b
  && Trace.deltas a = Trace.deltas b
  && Float.equal (Trace.final_time a) (Trace.final_time b)

let prop_codec_adversarial_names =
  QCheck2.Test.make ~name:"text codec round-trips adversarial names" ~count:200
    gen_adversarial_trace (fun tr ->
      structurally_equal tr (Codec.parse (Codec.to_string tr)))

let prop_binary_adversarial_names =
  QCheck2.Test.make ~name:"binary codec round-trips adversarial names"
    ~count:200 gen_adversarial_trace (fun tr ->
      structurally_equal tr (Binary.parse (Binary.to_string tr)))

let prop_cross_conversion =
  QCheck2.Test.make ~name:"text and binary agree on every trace" ~count:200
    gen_adversarial_trace (fun tr ->
      String.equal
        (Codec.to_string (Codec.parse (Codec.to_string tr)))
        (Codec.to_string (Binary.parse (Binary.to_string tr))))

let () =
  Alcotest.run "trace"
    [
      ( "core",
        [
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "state reconstruction" `Quick test_states_reconstruction;
          Alcotest.test_case "marking_after/state_at" `Quick
            test_marking_after_and_state_at;
          Alcotest.test_case "env_after" `Quick test_env_after;
          Alcotest.test_case "in_flight_after" `Quick test_in_flight_after;
          Alcotest.test_case "collector" `Quick test_collector_and_replay;
          Alcotest.test_case "collector incomplete" `Quick test_collector_incomplete;
          Alcotest.test_case "tee" `Quick test_tee;
        ] );
      ( "codec",
        [
          Alcotest.test_case "round trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "float precision" `Quick test_codec_float_precision;
          Alcotest.test_case "foreign producer" `Quick test_codec_foreign_trace;
          Alcotest.test_case "errors" `Quick test_codec_errors;
          Alcotest.test_case "streaming writer" `Quick test_writer_sink_streams;
          Alcotest.test_case "name escaping" `Quick test_codec_escapes_names;
          Alcotest.test_case "empty name rejected" `Quick
            test_codec_empty_name_rejected;
          Alcotest.test_case "bad escapes" `Quick test_codec_bad_escape;
          Alcotest.test_case "incremental reader" `Quick test_incremental_reader;
        ] );
      ( "binary",
        [
          Alcotest.test_case "round trip" `Quick test_binary_roundtrip;
          Alcotest.test_case "adversarial names" `Quick
            test_binary_adversarial_names;
          Alcotest.test_case "cross conversion" `Quick
            test_binary_cross_conversion;
          Alcotest.test_case "errors" `Quick test_binary_errors;
          Alcotest.test_case "auto-detection" `Quick test_auto_detection;
        ] );
      ( "filter",
        [
          Alcotest.test_case "identity" `Quick test_filter_identity;
          Alcotest.test_case "renumbering" `Quick test_filter_places_renumbered;
          Alcotest.test_case "drops empty deltas" `Quick test_filter_drops_empty_deltas;
          Alcotest.test_case "orphan attribution" `Quick test_filter_orphan_attribution;
          Alcotest.test_case "place signals preserved" `Quick
            test_filter_preserves_place_signals;
          Alcotest.test_case "balanced accounting" `Quick
            test_filter_balanced_accounting;
          Alcotest.test_case "streaming matches batch" `Quick
            test_filter_streaming_matches_batch;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_codec_adversarial_names;
          QCheck_alcotest.to_alcotest prop_binary_adversarial_names;
          QCheck_alcotest.to_alcotest prop_cross_conversion;
        ] );
    ]
