(* Tests for the future-event list (binary heap with FIFO tie-breaking). *)

module Q = Pnut_sim.Event_queue

let drain q =
  let rec go acc =
    match Q.pop q with
    | Some (t, v) -> go ((t, v) :: acc)
    | None -> List.rev acc
  in
  go []

let test_empty () =
  let q = Q.create () in
  Alcotest.(check bool) "is_empty" true (Q.is_empty q);
  Alcotest.(check int) "length" 0 (Q.length q);
  Alcotest.(check bool) "peek none" true (Q.peek_time q = None);
  Alcotest.(check bool) "pop none" true (Q.pop q = None)

let test_ordering () =
  let q = Q.create () in
  List.iter (fun (t, v) -> Q.push q t v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  Alcotest.(check int) "length" 3 (Q.length q);
  Alcotest.(check (option (float 0.0))) "peek min" (Some 1.0) (Q.peek_time q);
  Alcotest.(check (list (pair (float 0.0) string)))
    "sorted"
    [ (1.0, "a"); (2.0, "b"); (3.0, "c") ]
    (drain q)

let test_fifo_ties () =
  let q = Q.create () in
  List.iteri (fun i v -> Q.push q 5.0 (i, v)) [ "x"; "y"; "z" ];
  Q.push q 1.0 (99, "first");
  let order = List.map snd (drain q) in
  Alcotest.(check (list (pair int string)))
    "insertion order among equals"
    [ (99, "first"); (0, "x"); (1, "y"); (2, "z") ]
    order

let test_interleaved_push_pop () =
  let q = Q.create () in
  Q.push q 2.0 "b";
  Q.push q 1.0 "a";
  Alcotest.(check (option (pair (float 0.0) string))) "pop a" (Some (1.0, "a")) (Q.pop q);
  Q.push q 0.5 "pre";
  Alcotest.(check (option (pair (float 0.0) string))) "pop pre" (Some (0.5, "pre")) (Q.pop q);
  Alcotest.(check (option (pair (float 0.0) string))) "pop b" (Some (2.0, "b")) (Q.pop q);
  Alcotest.(check bool) "drained" true (Q.is_empty q)

let test_growth () =
  let q = Q.create () in
  for i = 999 downto 0 do
    Q.push q (float_of_int i) i
  done;
  Alcotest.(check int) "length 1000" 1000 (Q.length q);
  let popped = drain q in
  Alcotest.(check int) "all popped" 1000 (List.length popped);
  let sorted = List.for_all2 (fun (t, _) i -> Float.equal t (float_of_int i)) popped (List.init 1000 Fun.id) in
  Alcotest.(check bool) "ascending" true sorted

let test_clear () =
  let q = Q.create () in
  Q.push q 1.0 "x";
  Q.clear q;
  Alcotest.(check bool) "cleared" true (Q.is_empty q);
  Q.push q 2.0 "y";
  Alcotest.(check (option (pair (float 0.0) string))) "usable after clear"
    (Some (2.0, "y")) (Q.pop q)

(* A popped payload must not stay reachable from the queue's backing
   array (the vacated slot used to keep the moved entry alive; the
   growth filler used to pin one payload in every unused slot). *)
let test_pop_releases_payloads () =
  let n = 20 (* crosses the initial capacity of 16, forcing a growth *) in
  let q = Q.create () in
  let w = Weak.create n in
  (* fill from a separate function so no local keeps the payloads alive *)
  let fill () =
    for i = 0 to n - 1 do
      let payload = ref i in
      Weak.set w i (Some payload);
      Q.push q (float_of_int i) payload
    done
  in
  fill ();
  let rec drop () = match Q.pop q with Some _ -> drop () | None -> () in
  drop ();
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check w i then incr live
  done;
  Alcotest.(check int) "no payload pinned by the drained queue" 0 !live;
  (* the queue (with its grown backing array) is still usable *)
  Q.push q 1.0 (ref 7);
  Alcotest.(check bool) "usable after drain" true (Q.pop q <> None)

(* [clear] resets the insertion counter: a cleared queue behaves exactly
   like a fresh one on the same push sequence (the checkpoint/restore
   path depends on this). *)
let test_clear_resets_sequence () =
  let used = Q.create () in
  for i = 0 to 9 do
    Q.push used (float_of_int i) i
  done;
  Q.clear used;
  let fresh = Q.create () in
  List.iter
    (fun (t, v) ->
      Q.push used t v;
      Q.push fresh t v)
    [ (5.0, 0); (5.0, 1); (2.0, 2); (5.0, 3) ];
  Alcotest.(check (list (pair (float 0.0) int)))
    "same drain as a fresh queue" (drain fresh) (drain used)

(* property: popping a random push sequence yields times in ascending
   order, and equal times preserve insertion order *)
let prop_heap_order =
  QCheck2.Test.make ~name:"heap pops in (time, insertion) order" ~count:200
    QCheck2.Gen.(list (int_range 0 20))
    (fun times ->
      let q = Q.create () in
      List.iteri (fun i t -> Q.push q (float_of_int t) i) times;
      let popped = drain q in
      let rec ordered = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
          (t1 < t2 || (Float.equal t1 t2 && i1 < i2)) && ordered rest
        | [ _ ] | [] -> true
      in
      List.length popped = List.length times && ordered popped)

let () =
  Alcotest.run "event-queue"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_interleaved_push_pop;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "pop releases payloads" `Quick
            test_pop_releases_payloads;
          Alcotest.test_case "clear resets sequence" `Quick
            test_clear_resets_sequence;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_heap_order ]);
    ]
