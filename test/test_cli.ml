(* End-to-end tests of the pnut command-line driver: each subcommand is
   exercised as a real process, piping files between tools like the
   original P-NUT. *)

let pnut = "../bin/pnut.exe"

let tmp_dir = Filename.get_temp_dir_name ()

let tmp name = Filename.concat tmp_dir ("pnut_cli_" ^ name)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run the binary, capturing stdout; returns (exit code, output). *)
let run args =
  let out_file = tmp "out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s"
      (Filename.quote pnut)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out_file)
      (Filename.quote (tmp "err"))
  in
  let code = Sys.command cmd in
  (code, read_file out_file)

let check_run what args =
  let code, out = run args in
  Alcotest.(check int) (what ^ " exit code") 0 code;
  out

let model_file = tmp "pipeline.pn"
let trace_file = tmp "run.trace"

let test_model_emit () =
  let out = check_run "model" [ "model"; "pipeline"; "-o"; model_file ] in
  ignore out;
  let text = read_file model_file in
  Testutil.check_contains "model file" text "net pipeline3";
  Testutil.check_contains "model file" text "transition Start_prefetch"

let test_validate () =
  let out = check_run "validate" [ "validate"; model_file ] in
  Testutil.check_contains "validate" out "no diagnostics"

let test_sim_with_trace_and_stats () =
  let out =
    check_run "sim"
      [ "sim"; model_file; "--until"; "2000"; "--seed"; "42"; "--trace";
        trace_file; "--stats" ]
  in
  Testutil.check_contains "stats printed" out "RUN STATISTICS";
  Testutil.check_contains "stats printed" out "PLACE STATISTICS";
  let trace = read_file trace_file in
  Testutil.check_contains "trace file" trace "%pnut-trace 1";
  Testutil.check_contains "trace file" trace "end 2000"

let test_stat_from_trace () =
  let out = check_run "stat" [ "stat"; trace_file ] in
  Testutil.check_contains "report" out "EVENT STATISTICS";
  let tsv = check_run "stat tsv" [ "stat"; trace_file; "--tsv" ] in
  Testutil.check_contains "tsv" tsv "place\tBus_busy"

let test_filter () =
  let filtered = tmp "filtered.trace" in
  let _ =
    check_run "filter"
      [ "filter"; trace_file; "--places"; "Bus_busy,Bus_free";
        "--transitions"; "Start_prefetch,End_prefetch"; "-o"; filtered ]
  in
  let text = read_file filtered in
  Testutil.check_contains "kept place" text "Bus_busy";
  Alcotest.(check bool) "smaller than original" true
    (String.length text < String.length (read_file trace_file))

let test_piped_pipeline () =
  (* the paper's architecture, literally: simulator | filter | stat as
     three processes over pipes, no intermediate file *)
  let out_file = tmp "pipe.out" in
  let cmd =
    Printf.sprintf
      "%s sim %s --until 500 --seed 7 --trace - | %s filter - --transitions \
       Start_prefetch | %s stat - > %s 2> %s"
      (Filename.quote pnut) (Filename.quote model_file) (Filename.quote pnut)
      (Filename.quote pnut) (Filename.quote out_file)
      (Filename.quote (tmp "err"))
  in
  Alcotest.(check int) "pipeline exit" 0 (Sys.command cmd);
  let out = read_file out_file in
  Testutil.check_contains "stats at the end of the pipe" out "RUN STATISTICS";
  Testutil.check_contains "kept transition" out "Start_prefetch";
  Testutil.check_contains "pseudo transition" out "_filtered"

let test_binary_format () =
  let bin_trace = tmp "run_binary.trace" in
  let _ =
    check_run "sim binary"
      [ "sim"; model_file; "--until"; "2000"; "--seed"; "42"; "--trace";
        bin_trace; "--format"; "binary" ]
  in
  let bytes = read_file bin_trace in
  Alcotest.(check string) "magic" "\x00pnut-bin" (String.sub bytes 0 9);
  Alcotest.(check bool) "much smaller than the text trace" true
    (2 * String.length bytes < String.length (read_file trace_file));
  (* readers auto-detect the format: same run, same report *)
  let from_bin = check_run "stat binary" [ "stat"; bin_trace; "--tsv" ] in
  let from_text = check_run "stat text" [ "stat"; trace_file; "--tsv" ] in
  Alcotest.(check string) "stat agrees across formats" from_text from_bin

let test_binary_pipeline () =
  (* an all-binary pipe: sim and filter write binary, stat auto-detects *)
  let out_file = tmp "binpipe.out" in
  let cmd =
    Printf.sprintf
      "%s sim %s --until 500 --seed 7 --trace - --format binary | %s filter - \
       --transitions Start_prefetch --format binary | %s stat - > %s 2> %s"
      (Filename.quote pnut) (Filename.quote model_file) (Filename.quote pnut)
      (Filename.quote pnut) (Filename.quote out_file)
      (Filename.quote (tmp "err"))
  in
  Alcotest.(check int) "binary pipeline exit" 0 (Sys.command cmd);
  Testutil.check_contains "stats" (read_file out_file) "RUN STATISTICS"

let test_stat_rejects_corrupt_trace () =
  let bad = tmp "corrupt.trace" in
  let oc = open_out bad in
  output_string oc
    "net x\nplace 0 p 0\ntransition 0 t\nbegin\n@ 5 S 0 0\n@ 3 E 0 0\nend 10\n";
  close_out oc;
  let code, _ = run [ "stat"; bad ] in
  Alcotest.(check int) "corrupt trace exit" 2 code;
  Testutil.check_contains "names the regression" (read_file (tmp "err"))
    "went backwards"

let test_tracer () =
  let out =
    check_run "tracer"
      [ "tracer"; trace_file; "-s"; "Bus_busy"; "-s"; "pre_fetching";
        "--from"; "0"; "--to"; "100"; "--marker"; "O:20"; "--marker"; "X:80" ]
  in
  Testutil.check_contains "waveform" out "Bus_busy";
  Testutil.check_contains "interval" out "O <-> X : 60"

let test_tracer_csv () =
  let out =
    check_run "tracer csv" [ "tracer"; trace_file; "-s"; "Bus_busy"; "--csv" ]
  in
  Testutil.check_contains "csv header" out "time,Bus_busy";
  Alcotest.(check bool) "many rows" true
    (List.length (String.split_on_char '\n' out) > 10)

let test_check_queries () =
  let out =
    check_run "check"
      [ "check"; trace_file;
        "forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]" ]
  in
  Testutil.check_contains "query result" out "holds";
  (* a failing query exits 1 *)
  let code, out2 =
    run [ "check"; trace_file; "exists s in S [ Bus_busy(s) > 5 ]" ]
  in
  Alcotest.(check int) "failing query exit" 1 code;
  Testutil.check_contains "failure reported" out2 "fails"

let test_reach_and_ctl () =
  let out =
    check_run "reach"
      [ "reach"; model_file; "--ctl"; "Bus_free + Bus_busy == 1" ]
  in
  Testutil.check_contains "summary" out "reachability graph";
  Testutil.check_contains "ctl" out "AG(Bus_free + Bus_busy == 1): true"

let test_reach_query () =
  let out =
    check_run "reach query"
      [ "reach"; model_file; "--query";
        "forall s in S [ Bus_busy(s) + Bus_free(s) = 1 ]" ]
  in
  Testutil.check_contains "proof result" out "holds";
  let code, _ =
    run [ "reach"; model_file; "--query"; "forall s in S [ Bus_free(s) = 1 ]" ]
  in
  Alcotest.(check int) "refuted query exits 1" 1 code

let test_reach_por () =
  (* the generator model family and the stubborn-set reduction flag *)
  let indep = tmp "indep.pn" in
  let _ = check_run "indep model" [ "model"; "indep6x4"; "-o"; indep ] in
  let text = read_file indep in
  Testutil.check_contains "generator net name" text "net indep6x4";
  let full = check_run "reach full" [ "reach"; indep; "--por"; "off" ] in
  Testutil.check_contains "full states" full "states: 15625";
  Testutil.check_contains "full deadlock" full "deadlocks: 1";
  let reduced = check_run "reach reduced" [ "reach"; indep; "--por"; "on" ] in
  Testutil.check_contains "reduced deadlock" reduced "deadlocks: 1";
  let reduced_states =
    Scanf.sscanf
      (String.concat ""
         (List.filter
            (fun l -> String.length l > 7 && String.sub l 0 7 = "states:")
            (String.split_on_char '\n' reduced)))
      "states: %d" Fun.id
  in
  Alcotest.(check bool) ">= 5x fewer states" true
    (15625 >= 5 * reduced_states);
  (* auto mode turns the reduction on for this plain net *)
  let auto = check_run "reach auto" [ "reach"; indep ] in
  Testutil.check_contains "auto reduces" auto
    (Printf.sprintf "states: %d" reduced_states);
  (* the one-line stderr summary *)
  let _ = check_run "reach stderr" [ "reach"; indep; "--por"; "on" ] in
  let err = read_file (tmp "err") in
  Testutil.check_contains "stderr summary" err "reach: states=";
  Testutil.check_contains "stderr reduction" err "por_reduction=";
  (* explicit --por on cannot serve --ctl, and dies on unsupported nets *)
  let code, _ =
    run [ "reach"; indep; "--por"; "on"; "--ctl"; "P1_s0 <= 1" ]
  in
  Alcotest.(check int) "por+ctl rejected" 2 code;
  let interp = tmp "interp.pn" in
  let _ = check_run "interp model" [ "model"; "interpreted"; "-o"; interp ] in
  let code, _ = run [ "reach"; interp; "--por"; "on" ] in
  Alcotest.(check int) "unsupported net rejected" 2 code;
  let err = read_file (tmp "err") in
  Testutil.check_contains "structured rejection" err "--por off";
  (* unknown model names still die with the full menu *)
  let code, _ = run [ "model"; "indep0x4" ] in
  Alcotest.(check bool) "bad generator params rejected" true (code <> 0)

let test_timed_reach () =
  (* the state-class graph is the default --timed construction; the
     frozen explicit expansion stays reachable behind --explicit and is
     strictly larger on the delay-heavy pipeline *)
  let out =
    check_run "timed reach" [ "reach"; model_file; "--timed" ]
  in
  Testutil.check_contains "class summary" out "timed state-class graph";
  let err = read_file (tmp "err") in
  Testutil.check_contains "class stderr" err "reach: classes=";
  let class_states =
    Scanf.sscanf
      (String.concat ""
         (List.filter
            (fun l -> String.length l > 7 && String.sub l 0 7 = "states:")
            (String.split_on_char '\n' out)))
      "states: %d" Fun.id
  in
  let explicit =
    check_run "explicit timed reach"
      [ "reach"; model_file; "--timed"; "--explicit" ]
  in
  Testutil.check_contains "explicit summary" explicit
    "timed reachability graph";
  let explicit_states =
    Scanf.sscanf
      (String.concat ""
         (List.filter
            (fun l -> String.length l > 7 && String.sub l 0 7 = "states:")
            (String.split_on_char '\n' explicit)))
      "states: %d" Fun.id
  in
  Alcotest.(check bool) "classes beat explicit states" true
    (class_states < explicit_states);
  (* --packed covers --timed now: auto packs the bounded pipeline, off
     falls back to the boxed build of the same graph *)
  let boxed =
    check_run "timed boxed" [ "reach"; model_file; "--timed"; "--packed"; "off" ]
  in
  let err = read_file (tmp "err") in
  Testutil.check_contains "boxed stderr" err "bytes/state=-";
  Alcotest.(check string) "packed and boxed summaries agree" out boxed;
  (* --explicit is a --timed refinement, and the explicit expansion has
     no packed encoding *)
  let code, _ = run [ "reach"; model_file; "--explicit" ] in
  Alcotest.(check int) "--explicit without --timed exits 2" 2 code;
  let code, _ =
    run [ "reach"; model_file; "--timed"; "--explicit"; "--packed"; "on" ]
  in
  Alcotest.(check int) "--explicit --packed on exits 2" 2 code

let test_model_list () =
  let out = check_run "model list" [ "model"; "--list" ] in
  Testutil.check_contains "pipeline row" out "pipeline";
  Testutil.check_contains "generator row" out "indep<N>x<K>";
  Testutil.check_contains "description" out "Figures 1-3"

let test_invariants () =
  let out = check_run "invariants" [ "invariants"; model_file ] in
  Testutil.check_contains "p-invariants" out "Bus_busy + Bus_free";
  Testutil.check_contains "t-invariants header" out "T-invariants:"

let test_anim () =
  let out =
    check_run "anim" [ "anim"; model_file; "--steps"; "3"; "--places";
                       "Bus_free,Bus_busy" ]
  in
  Testutil.check_contains "frames" out "Start_prefetch";
  Testutil.check_contains "separator" out "----";
  (* a stored trace animates too, streaming record-by-record *)
  let out =
    check_run "anim from trace"
      [ "anim"; model_file; "--trace"; trace_file; "--places";
        "Bus_free,Bus_busy" ]
  in
  Testutil.check_contains "trace frames" out "Start_prefetch"

let test_analytic () =
  let out =
    check_run "analytic" [ "analytic"; model_file; "--exponentialize";
                           "--max-states"; "5000" ]
  in
  Testutil.check_contains "states" out "tangible states";
  Testutil.check_contains "throughputs" out "Issue"

let test_dot () =
  let out = check_run "dot" [ "dot"; model_file ] in
  Testutil.check_contains "digraph" out "digraph \"pipeline3\"";
  let out2 = check_run "dot reach" [ "dot"; model_file; "--kind"; "reach" ] in
  Testutil.check_contains "reach digraph" out2 "digraph reachability"

let test_dot_budget () =
  (* dot's graph-building kinds honour the shared budget flags: on a
     trip the dot of the partial prefix is still written, then exit 3 *)
  let pump = tmp "pump3.pn" in
  let oc = open_out pump in
  output_string oc
    "net pump\nplace p init 1\nplace q\ntransition t\n  in p\n  out p, q\n";
  close_out oc;
  let code, out =
    run [ "dot"; pump; "--kind"; "reach"; "--wall-limit"; "0.05";
          "--max-states"; "100000000" ]
  in
  Alcotest.(check int) "dot reach degrades with exit 3" 3 code;
  Testutil.check_contains "partial dot written" out "digraph reachability";
  let err = read_file (tmp "err") in
  Testutil.check_contains "reason on stderr" err "wall-clock budget";
  (* coverability accelerates the pump to a finite tree instantly, so
     degrade it through the state cap on a wide bounded net instead *)
  let indep = tmp "indep_dot.pn" in
  let _ = check_run "indep model" [ "model"; "indep6x4"; "-o"; indep ] in
  let code, out =
    run [ "dot"; indep; "--kind"; "coverability"; "--max-states"; "50" ]
  in
  Alcotest.(check int) "dot coverability degrades with exit 3" 3 code;
  Testutil.check_contains "partial coverability dot" out "digraph";
  let code, out =
    run [ "dot"; pump; "--kind"; "reach"; "--max-states"; "50";
          "--wall-limit"; "300" ]
  in
  Alcotest.(check int) "state-capped dot exits 3" 3 code;
  Testutil.check_contains "capped dot still written" out "digraph reachability"

let test_replicate () =
  let out =
    check_run "replicate"
      [ "replicate"; model_file; "--runs"; "3"; "--until"; "1000";
        "--place"; "Bus_busy"; "--throughput"; "Issue" ]
  in
  Testutil.check_contains "place estimate" out "Bus_busy mean tokens";
  Testutil.check_contains "ci format" out "95% CI, 3 runs"

let test_coverability_cli () =
  (* write an unbounded inhibitor-free model by hand *)
  let pump = tmp "pump.pn" in
  let oc = open_out pump in
  output_string oc
    "net pump\nplace p init 1\nplace q\ntransition t\n  in p\n  out p, q\n";
  close_out oc;
  let code, out = run [ "coverability"; pump ] in
  Alcotest.(check int) "unbounded exits 1" 1 code;
  Testutil.check_contains "verdict" out "bounded: false";
  Testutil.check_contains "culprit" out "unbounded places: q";
  (* the pipeline model has inhibitor arcs: outside the Karp-Miller
     fragment, so a specification error (exit 2) naming the feature *)
  let code, _ = run [ "coverability"; model_file ] in
  Alcotest.(check int) "rejection exits 2" 2 code;
  let err = read_file (tmp "err") in
  Testutil.check_contains "rejection names feature" err "inhibitor arcs";
  Testutil.check_contains "rejection names construction" err "Karp-Miller"

let test_budget_degradation () =
  (* an unbounded token generator: only a budget makes these terminate *)
  let pump = tmp "pump2.pn" in
  let oc = open_out pump in
  output_string oc
    "net pump\nplace p init 1\nplace q\ntransition t\n  in p\n  out p, q\n";
  close_out oc;
  (* reach under a wall budget: partial summary on stdout, exit 3 *)
  let code, out =
    run [ "reach"; pump; "--wall-limit"; "0.05"; "--max-states"; "100000000" ]
  in
  Alcotest.(check int) "reach degrades with exit 3" 3 code;
  Testutil.check_contains "partial summary" out "reachability graph";
  let err = read_file (tmp "err") in
  Testutil.check_contains "reason on stderr" err "wall-clock budget";
  Testutil.check_contains "progress on stderr" err "frontier";
  (* sim under a wall budget: partial stats, exit 3 *)
  let code, out =
    run [ "sim"; model_file; "--until"; "1e12"; "--wall-limit"; "0.05";
          "--stats" ]
  in
  Alcotest.(check int) "sim degrades with exit 3" 3 code;
  Testutil.check_contains "partial stats" out "RUN STATISTICS";
  (* a budget generous enough never to trip changes nothing *)
  let code, out =
    run [ "sim"; model_file; "--until"; "2000"; "--seed"; "42"; "--stats";
          "--wall-limit"; "300"; "--heap-limit-mb"; "4096" ]
  in
  Alcotest.(check int) "untripped budget exits 0" 0 code;
  let _, plain =
    run [ "sim"; model_file; "--until"; "2000"; "--seed"; "42"; "--stats" ]
  in
  Alcotest.(check string) "untripped budget output identical" plain out;
  (* analytic: the state cap stays a structured exit-2 rejection *)
  let code, _ = run [ "analytic"; pump; "--max-states"; "50" ] in
  Alcotest.(check int) "analytic cap exits 2" 2 code;
  let err = read_file (tmp "err") in
  Testutil.check_contains "rejection names the cap" err "max_states";
  (* bad budget values are usage errors *)
  let code, _ = run [ "sim"; model_file; "--wall-limit=-1" ] in
  Alcotest.(check int) "negative budget exits 2" 2 code

let test_explore () =
  let script = tmp "explore.in" in
  let oc = open_out script in
  output_string oc "show\nenabled\nfire Start_prefetch\nrun 50\nquit\n";
  close_out oc;
  let out_file = tmp "explore.out" in
  let cmd =
    Printf.sprintf "%s explore %s < %s > %s 2>&1"
      (Filename.quote pnut) (Filename.quote model_file)
      (Filename.quote script) (Filename.quote out_file)
  in
  Alcotest.(check int) "explore exit" 0 (Sys.command cmd);
  let out = read_file out_file in
  Testutil.check_contains "banner" out "exploring pipeline3";
  Testutil.check_contains "fireable" out "fireable: Start_prefetch";
  Testutil.check_contains "manual fire" out "fired Start_prefetch";
  Testutil.check_contains "run" out "ran to t=50"

let test_batch () =
  let out =
    check_run "batch"
      [ "batch"; trace_file; "--warmup"; "200"; "--batches"; "6";
        "--place"; "Bus_busy"; "--throughput"; "Issue" ]
  in
  Testutil.check_contains "place CI" out "Bus_busy mean tokens";
  Testutil.check_contains "throughput CI" out "Issue throughput";
  Testutil.check_contains "runs = batches" out "6 runs"

let test_cycle () =
  (* the prefetch model is deterministic: exact steady-cycle analysis *)
  let prefetch = tmp "prefetch_cycle.pn" in
  let _ = check_run "model prefetch" [ "model"; "prefetch"; "-o"; prefetch ] in
  let out = check_run "cycle" [ "cycle"; prefetch ] in
  Testutil.check_contains "period" out "period:    5";
  Testutil.check_contains "decode throughput" out "0.400000"

let test_faults_campaign () =
  let out =
    check_run "faults"
      [ "faults"; model_file; "--fault"; "delay-scale End_prefetch factor 3";
        "--runs"; "2"; "--until"; "1000"; "--observe"; "Decode"; "--seed"; "7" ]
  in
  Testutil.check_contains "banner" out "FAULT CAMPAIGN";
  Testutil.check_contains "spec echoed" out "delay-scale End_prefetch factor 3";
  Testutil.check_contains "summary row" out "mean";
  let csv =
    check_run "faults csv"
      [ "faults"; model_file; "--fault"; "delay-scale End_prefetch factor 3";
        "--runs"; "2"; "--until"; "1000"; "--observe"; "Decode"; "--seed"; "7";
        "--csv" ]
  in
  Testutil.check_contains "csv header" csv
    "run,baseline_throughput,faulty_throughput"

let test_faults_deadlock_exit () =
  (* a decoder stuck forever fills the instruction buffers and starves
     the whole pipeline: the campaign must report the deadlock and
     exit 1 *)
  let spec = tmp "stuck.faults" in
  let oc = open_out spec in
  output_string oc "# decoder dies outright\nstuck Decode\n";
  close_out oc;
  let code, out =
    run
      [ "faults"; model_file; "--spec"; spec; "--runs"; "1"; "--until"; "500";
        "--observe"; "Decode"; "--explain-deadlock" ]
  in
  Alcotest.(check int) "deadlock exit code" 1 code;
  Testutil.check_contains "outcome" out "deadlocked";
  Testutil.check_contains "diagnosis printed" out "deadlock diagnosis";
  Testutil.check_contains "diagnosis names the veto" out
    "vetoed by an injected fault"

let test_faults_bad_spec () =
  let code, _ = run [ "faults"; model_file; "--fault"; "teleport X" ] in
  Alcotest.(check int) "spec error exit code" 2 code;
  let code, _ = run [ "faults"; model_file; "--fault"; "stuck Warp_drive" ] in
  Alcotest.(check int) "unknown name exit code" 2 code;
  let code, _ = run [ "faults"; model_file ] in
  Alcotest.(check int) "no faults exit code" 2 code

let test_sim_checkpoint_resume () =
  (* an interrupted-and-resumed run must replay exactly what the
     uninterrupted run would have done *)
  let full_trace = tmp "full.trace" in
  let resumed_trace = tmp "resumed.trace" in
  let state = tmp "sim.ck" in
  let _ =
    check_run "uninterrupted"
      [ "sim"; model_file; "--until"; "600"; "--seed"; "5"; "--trace";
        full_trace ]
  in
  let _ =
    check_run "first half"
      [ "sim"; model_file; "--until"; "300"; "--seed"; "5"; "--save-state";
        state ]
  in
  Testutil.check_contains "checkpoint file" (read_file state)
    "%pnut-checkpoint 1";
  let _ =
    check_run "resumed"
      [ "sim"; model_file; "--load-state"; state; "--until"; "600"; "--trace";
        resumed_trace ]
  in
  let tail n text =
    let lines = String.split_on_char '\n' (String.trim text) in
    let len = List.length lines in
    List.filteri (fun i _ -> i >= len - n) lines
  in
  Testutil.check_contains "resumed horizon" (read_file resumed_trace) "end 600";
  Alcotest.(check (list string)) "identical trace tail"
    (tail 20 (read_file full_trace))
    (tail 20 (read_file resumed_trace))

let test_sim_explain_deadlock () =
  let dead = tmp "dead.pn" in
  let oc = open_out dead in
  output_string oc "net deadnet\nplace p\nplace q init 1\ntransition t\n  in p\n  out q\n";
  close_out oc;
  let code, _ =
    run [ "sim"; dead; "--until"; "10"; "--explain-deadlock" ]
  in
  Alcotest.(check int) "dead run still exits 0" 0 code;
  let err = read_file (tmp "err") in
  Testutil.check_contains "explains the blocker" err "t";
  Testutil.check_contains "names the empty place" err "p"

let test_bad_model_error () =
  let bad = tmp "bad.pn" in
  let oc = open_out bad in
  output_string oc "net broken\ntransition t\n  in nowhere\n";
  close_out oc;
  let code, _ = run [ "validate"; bad ] in
  Alcotest.(check int) "parse error exit" 2 code

let () =
  if not (Sys.file_exists pnut) then begin
    (* the binary is declared as a dune dependency; this is a safeguard
       for running the test executable by hand from another directory *)
    print_endline "pnut binary not found; skipping CLI tests";
    exit 0
  end;
  Alcotest.run "cli"
    [
      ( "subcommands",
        [
          Alcotest.test_case "model" `Quick test_model_emit;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "sim" `Quick test_sim_with_trace_and_stats;
          Alcotest.test_case "stat" `Quick test_stat_from_trace;
          Alcotest.test_case "filter" `Quick test_filter;
          Alcotest.test_case "piped pipeline" `Quick test_piped_pipeline;
          Alcotest.test_case "binary format" `Quick test_binary_format;
          Alcotest.test_case "binary pipeline" `Quick test_binary_pipeline;
          Alcotest.test_case "corrupt trace rejected" `Quick
            test_stat_rejects_corrupt_trace;
          Alcotest.test_case "tracer" `Quick test_tracer;
          Alcotest.test_case "tracer csv" `Quick test_tracer_csv;
          Alcotest.test_case "check" `Quick test_check_queries;
          Alcotest.test_case "reach" `Quick test_reach_and_ctl;
          Alcotest.test_case "reach query" `Quick test_reach_query;
          Alcotest.test_case "reach por" `Quick test_reach_por;
          Alcotest.test_case "timed reach" `Quick test_timed_reach;
          Alcotest.test_case "model list" `Quick test_model_list;
          Alcotest.test_case "invariants" `Quick test_invariants;
          Alcotest.test_case "anim" `Quick test_anim;
          Alcotest.test_case "analytic" `Quick test_analytic;
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "dot budget" `Quick test_dot_budget;
          Alcotest.test_case "replicate" `Quick test_replicate;
          Alcotest.test_case "coverability" `Quick test_coverability_cli;
          Alcotest.test_case "budget degradation" `Quick
            test_budget_degradation;
          Alcotest.test_case "explore" `Quick test_explore;
          Alcotest.test_case "batch" `Quick test_batch;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "faults" `Quick test_faults_campaign;
          Alcotest.test_case "faults deadlock" `Quick test_faults_deadlock_exit;
          Alcotest.test_case "faults bad spec" `Quick test_faults_bad_spec;
          Alcotest.test_case "sim checkpoint" `Quick test_sim_checkpoint_resume;
          Alcotest.test_case "sim explain deadlock" `Quick
            test_sim_explain_deadlock;
          Alcotest.test_case "bad model" `Quick test_bad_model_error;
        ] );
    ]
