(* System-wide property tests over randomly generated nets: the whole
   tool pipeline must hold its invariants on nets nobody hand-crafted. *)

module Net = Pnut_core.Net
module B = Net.Builder
module Marking = Pnut_core.Marking
module Sim = Pnut_sim.Simulator
module Trace = Pnut_trace.Trace
module Codec = Pnut_trace.Codec
module Filter = Pnut_trace.Filter
module Stat = Pnut_stat.Stat
module Graph = Pnut_reach.Graph

(* -- random net generation --

   Small connected nets: [np] places with random initial tokens, [ntr]
   transitions with 1-2 inputs, 1-2 outputs, random small weights, and a
   random mix of timings.  Always includes at least one token so
   something can happen. *)

type spec = {
  sp_places : int;
  sp_transitions : int;
  sp_tokens : int list;       (* initial marking, length sp_places *)
  sp_arcs : (int list * int list * int) list;
      (* per transition: input place ids, output place ids, timing code *)
}

let gen_spec =
  QCheck2.Gen.(
    let* np = int_range 2 5 in
    let* ntr = int_range 1 5 in
    let* tokens = list_size (return np) (int_range 0 3) in
    let tokens = if List.for_all (fun t -> t = 0) tokens then 1 :: List.tl tokens else tokens in
    let gen_arc_list = list_size (int_range 1 2) (int_range 0 (np - 1)) in
    let* arcs =
      list_size (return ntr)
        (triple gen_arc_list gen_arc_list (int_range 0 3))
    in
    return { sp_places = np; sp_transitions = ntr; sp_tokens = tokens; sp_arcs = arcs })

let build_net spec =
  let b = B.create "random" in
  let places =
    List.mapi
      (fun i tokens -> B.add_place b (Printf.sprintf "p%d" i) ~initial:tokens)
      spec.sp_tokens
  in
  let place i = List.nth places (i mod spec.sp_places) in
  List.iteri
    (fun ti (inputs, outputs, timing) ->
      let dedup l = List.sort_uniq compare (List.map place l) in
      let firing, enabling =
        match timing with
        | 0 -> (Net.Zero, Net.Const 1.0)       (* keep zero-delay loops timed *)
        | 1 -> (Net.Const 1.0, Net.Zero)
        | 2 -> (Net.Const 2.5, Net.Zero)
        | _ -> (Net.Zero, Net.Const 0.5)
      in
      ignore
        (B.add_transition b
           (Printf.sprintf "t%d" ti)
           ~inputs:(List.map (fun p -> (p, 1)) (dedup inputs))
           ~outputs:(List.map (fun p -> (p, 1)) (dedup outputs))
           ~firing ~enabling
          : Net.transition_id))
    spec.sp_arcs;
  B.build b

let short_trace ?(seed = 7) spec =
  let net = build_net spec in
  let trace, _ = Sim.trace ~seed ~until:50.0 ~max_events:500 net in
  (net, trace)

(* -- properties -- *)

let prop_markings_never_negative =
  QCheck2.Test.make ~name:"simulated markings never go negative" ~count:150
    gen_spec (fun spec ->
      let _, trace = short_trace spec in
      Array.for_all
        (fun (_, m) -> Array.for_all (fun c -> c >= 0) m)
        (Trace.states trace))

let prop_trace_times_monotone =
  QCheck2.Test.make ~name:"trace timestamps are non-decreasing" ~count:150
    gen_spec (fun spec ->
      let _, trace = short_trace spec in
      let ok = ref true in
      let last = ref 0.0 in
      Array.iter
        (fun (d : Trace.delta) ->
          if d.Trace.d_time < !last then ok := false;
          last := d.Trace.d_time)
        (Trace.deltas trace);
      !ok)

let prop_starts_cover_ends =
  QCheck2.Test.make ~name:"every Fire_end is preceded by its Fire_start"
    ~count:150 gen_spec (fun spec ->
      let _, trace = short_trace spec in
      let open_firings = Hashtbl.create 16 in
      let ok = ref true in
      Array.iter
        (fun (d : Trace.delta) ->
          match d.Trace.d_kind with
          | Trace.Fire_start -> Hashtbl.replace open_firings d.Trace.d_firing ()
          | Trace.Fire_end ->
            if Hashtbl.mem open_firings d.Trace.d_firing then
              Hashtbl.remove open_firings d.Trace.d_firing
            else ok := false)
        (Trace.deltas trace);
      !ok)

let prop_codec_roundtrip_random_nets =
  QCheck2.Test.make ~name:"codec round-trips simulated traces" ~count:100
    gen_spec (fun spec ->
      let _, trace = short_trace spec in
      let text = Codec.to_string trace in
      String.equal text (Codec.to_string (Codec.parse text)))

let prop_filter_identity =
  QCheck2.Test.make ~name:"identity filter preserves traces" ~count:100
    gen_spec (fun spec ->
      let _, trace = short_trace spec in
      String.equal
        (Codec.to_string trace)
        (Codec.to_string (Filter.apply Filter.all trace)))

let prop_stat_mass_conservation =
  QCheck2.Test.make ~name:"stat starts >= ends and bounded counts" ~count:100
    gen_spec (fun spec ->
      let _, trace = short_trace spec in
      let r = Stat.of_trace trace in
      Array.for_all
        (fun t ->
          t.Stat.ts_starts >= t.Stat.ts_ends && t.Stat.ts_ends >= 0)
        r.Stat.transitions)

let prop_determinism =
  QCheck2.Test.make ~name:"same seed, same trace on random nets" ~count:75
    gen_spec (fun spec ->
      let _, t1 = short_trace ~seed:13 spec in
      let _, t2 = short_trace ~seed:13 spec in
      String.equal (Codec.to_string t1) (Codec.to_string t2))

(* Untimed reachability must cover every marking the simulator visits at
   instants when no firing is in flight (atomic-comparable states). *)
let prop_simulated_quiescent_states_reachable =
  QCheck2.Test.make ~name:"quiescent simulated markings are in the graph"
    ~count:75 gen_spec (fun spec ->
      let net = build_net spec in
      match Graph.build ~max_states:3000 net with
      | exception Invalid_argument _ -> true  (* stochastic parts: skip *)
      | g ->
        if not (Graph.complete g) then true
        else begin
          let trace, _ = Sim.trace ~seed:3 ~until:30.0 ~max_events:300 net in
          let ok = ref true in
          let n = Trace.length trace in
          for i = 0 to n do
            let in_flight = Trace.in_flight_after trace i in
            if Array.for_all (fun c -> c = 0) in_flight then begin
              let m = Trace.marking_after trace i in
              if Graph.find_state g m = None then ok := false
            end
          done;
          !ok
        end)

(* Invariant values computed by Farkas hold on every reachable (graph)
   state, for random nets. *)
let prop_invariants_hold_on_graph =
  QCheck2.Test.make ~name:"P-invariants hold across the reachability graph"
    ~count:75 gen_spec (fun spec ->
      let net = build_net spec in
      let inc = Pnut_core.Incidence.of_net net in
      match Pnut_core.Incidence.p_invariants inc with
      | exception Invalid_argument _ -> true  (* row-limit blowup: skip *)
      | invs -> (
        match Graph.build ~max_states:2000 net with
        | exception Invalid_argument _ -> true
        | g ->
          if not (Graph.complete g) then true
          else begin
            let m0 = Marking.to_array (Net.initial_marking net) in
            List.for_all
              (fun y ->
                let v0 = Pnut_core.Incidence.weighted_sum y m0 in
                let ok = ref true in
                for i = 0 to Graph.num_states g - 1 do
                  let s = Graph.state g i in
                  if Pnut_core.Incidence.weighted_sum y s.Graph.s_marking <> v0
                  then ok := false
                done;
                !ok)
              invs
          end))

(* The waveform renderer and animator must not crash on any trace. *)
let prop_renderers_total =
  QCheck2.Test.make ~name:"waveform and animator never crash" ~count:75
    gen_spec (fun spec ->
      let net, trace = short_trace spec in
      let h = Trace.header trace in
      let signals =
        Array.to_list h.Trace.h_places
        |> List.map (fun p -> Pnut_tracer.Signal.Place p)
      in
      let _ =
        Pnut_tracer.Waveform.render
          ~style:{ Pnut_tracer.Waveform.default_style with width = 24 }
          trace signals
      in
      let frames = Pnut_anim.Animator.frames net trace in
      List.length frames = 2 * Trace.length trace)

(* Coverability is an over-approximation of reachability: for bounded
   inhibitor-free nets, every reachable marking must be covered. *)
let prop_coverability_covers_reachability =
  QCheck2.Test.make ~name:"coverability covers every reachable marking"
    ~count:75 gen_spec (fun spec ->
      let net = build_net spec in
      match Pnut_reach.Coverability.build ~max_states:3000 net with
      | exception Invalid_argument _ -> true  (* inhibitors etc.: skip *)
      | cov -> (
        match Graph.build ~max_states:2000 net with
        | exception Invalid_argument _ -> true
        | g ->
          if not (Graph.complete g && Pnut_reach.Coverability.complete cov)
          then true
          else begin
            let ok = ref true in
            for i = 0 to Graph.num_states g - 1 do
              let m = (Graph.state g i).Graph.s_marking in
              if not (Pnut_reach.Coverability.covers cov m) then ok := false
            done;
            (* and the per-place bounds dominate the exact bounds *)
            !ok
            && List.for_all
                 (fun p ->
                   match Pnut_reach.Coverability.place_bound cov p with
                   | None -> true
                   | Some cb -> cb >= Graph.bound g p)
                 (List.init spec.sp_places Fun.id)
          end))

(* Explicit timed expansions (the frozen oracle) are well-formed: residual delays never go
   negative, Tick edges carry positive durations equal to the minimum
   residual of their source state, and Fire edges only leave states where
   the fired transition's enabling residual is zero. *)
let prop_timed_graph_well_formed =
  QCheck2.Test.make ~name:"explicit timed graphs are well-formed" ~count:60 gen_spec
    (fun spec ->
      let net = build_net spec in
      match Pnut_reach.Timed_explicit.build ~max_states:400 ~horizon:20.0 net with
      | exception Invalid_argument _ -> true
      | g ->
        let ok = ref true in
        for i = 0 to Pnut_reach.Timed_explicit.num_states g - 1 do
          let s = Pnut_reach.Timed_explicit.state g i in
          let residuals =
            List.map snd s.Pnut_reach.Timed_explicit.ts_in_flight
            @ List.map snd s.Pnut_reach.Timed_explicit.ts_pending
          in
          if List.exists (fun r -> r < 0.0) residuals then ok := false;
          List.iter
            (fun e ->
              match e.Pnut_reach.Timed_explicit.e_label with
              | Pnut_reach.Timed_explicit.Tick d ->
                let positive_residuals =
                  List.filter (fun r -> r > 0.0) residuals
                in
                if d <= 0.0
                   || positive_residuals = []
                   || Float.abs
                        (List.fold_left Float.min d positive_residuals -. d)
                      > 1e-9
                then ok := false
              | Pnut_reach.Timed_explicit.Fire tid ->
                (match List.assoc_opt tid s.Pnut_reach.Timed_explicit.ts_pending with
                | Some r when Float.equal r 0.0 -> ()
                | Some _ | None -> ok := false)
              | Pnut_reach.Timed_explicit.Complete tid ->
                if
                  not
                    (List.exists
                       (fun (t, r) -> t = tid && Float.equal r 0.0)
                       s.Pnut_reach.Timed_explicit.ts_in_flight)
                then ok := false)
            (Pnut_reach.Timed_explicit.successors g i)
        done;
        !ok)

(* Batch means over the full window equal the global average. *)
let prop_batch_consistent_with_stat =
  QCheck2.Test.make ~name:"batch means average to the stat answer" ~count:50
    gen_spec (fun spec ->
      let _, trace = short_trace spec in
      if Trace.final_time trace <= 0.0 then true
      else begin
        let h = Trace.header trace in
        let r = Stat.of_trace trace in
        Array.for_all
          (fun name ->
            let e = Pnut_stat.Batch.place_utilization ~batches:4 trace name in
            (* mean of equal-width batch means = global time average *)
            Float.abs (e.Pnut_stat.Replication.mean -. Stat.utilization r name)
            < 1e-6)
          h.Trace.h_places
      end)

let () =
  Alcotest.run "properties"
    [
      ( "system",
        [
          QCheck_alcotest.to_alcotest prop_markings_never_negative;
          QCheck_alcotest.to_alcotest prop_trace_times_monotone;
          QCheck_alcotest.to_alcotest prop_starts_cover_ends;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip_random_nets;
          QCheck_alcotest.to_alcotest prop_filter_identity;
          QCheck_alcotest.to_alcotest prop_stat_mass_conservation;
          QCheck_alcotest.to_alcotest prop_determinism;
          QCheck_alcotest.to_alcotest prop_simulated_quiescent_states_reachable;
          QCheck_alcotest.to_alcotest prop_invariants_hold_on_graph;
          QCheck_alcotest.to_alcotest prop_coverability_covers_reachability;
          QCheck_alcotest.to_alcotest prop_timed_graph_well_formed;
          QCheck_alcotest.to_alcotest prop_renderers_total;
          QCheck_alcotest.to_alcotest prop_batch_consistent_with_stat;
        ] );
    ]
