(* Differential validation of the state-class construction: on random
   bounded timed nets the class graph must agree with the frozen
   explicit expansion (Timed_explicit) on everything the analyses
   consume — reachable markings, deadlocks, place bounds — and the
   packed class arrays must be byte-identical for every [jobs] value. *)

module Net = Pnut_core.Net
module Expr = Pnut_core.Expr
module Value = Pnut_core.Value
module B = Net.Builder
module Timed = Pnut_reach.Timed
module Tx = Pnut_reach.Timed_explicit

(* -- random timed net generation --

   Small connected nets with deterministic delays drawn from every
   accepted duration kind: [Zero], [Const], degenerate [Uniform] and
   [Choice], and deterministic [Dynamic] expressions over a variable.
   Integer-valued delays keep residual arithmetic exact, so float
   comparisons between the two constructions never wobble. *)

type spec = {
  sp_places : int;
  sp_tokens : int list;
  sp_arcs : (int list * int list * int * int * int) list;
      (* inputs, outputs, firing code, enabling code, delay 1..3 *)
}

let gen_spec =
  QCheck2.Gen.(
    let* np = int_range 2 5 in
    let* ntr = int_range 1 5 in
    let* tokens = list_size (return np) (int_range 0 2) in
    let tokens =
      if List.for_all (fun t -> t = 0) tokens then 1 :: List.tl tokens
      else tokens
    in
    let gen_arc_list = list_size (int_range 1 2) (int_range 0 (np - 1)) in
    let* arcs =
      list_size (return ntr)
        (tup5 gen_arc_list gen_arc_list (int_range 0 4) (int_range 0 4)
           (int_range 1 3))
    in
    return { sp_places = np; sp_tokens = tokens; sp_arcs = arcs })

let duration code delay =
  let d = float_of_int delay in
  match code with
  | 0 -> Net.Zero
  | 1 -> Net.Const d
  | 2 -> Net.Uniform (d, d)
  | 3 -> Net.Choice [ (d, 1.0); (d, 3.0) ]
  | _ -> Net.Dynamic Expr.(var "dly" * int delay)

let build_net spec =
  let b = B.create "random-timed" ~variables:[ ("dly", Value.Int 1) ] in
  let places =
    List.mapi
      (fun i tokens -> B.add_place b (Printf.sprintf "p%d" i) ~initial:tokens)
      spec.sp_tokens
  in
  let place i = List.nth places (i mod spec.sp_places) in
  List.iteri
    (fun ti (inputs, outputs, fc, ec, delay) ->
      let dedup l = List.sort_uniq compare (List.map place l) in
      ignore
        (B.add_transition b
           (Printf.sprintf "t%d" ti)
           ~inputs:(List.map (fun p -> (p, 1)) (dedup inputs))
           ~outputs:(List.map (fun p -> (p, 1)) (dedup outputs))
           ~firing:(duration fc delay)
           ~enabling:(duration ec delay)
          : Net.transition_id))
    spec.sp_arcs;
  B.build b

(* Both constructions must finish for a comparison to mean anything;
   unbounded or too-large nets are skipped (not failed). *)
let build_both ?(max_states = 3_000) net =
  let g = Timed.build ~max_states net in
  let x = Tx.build ~max_states net in
  if Timed.complete g && Tx.complete x then Some (g, x) else None

let sorted_markings n state =
  List.init n state |> List.map Array.to_list |> List.sort_uniq compare

let class_markings g =
  sorted_markings (Timed.num_states g) (fun i ->
      (Timed.state g i).Timed.ts_marking)

let explicit_markings x =
  sorted_markings (Tx.num_states x) (fun i -> (Tx.state x i).Tx.ts_marking)

let deadlock_markings_class g =
  List.map (fun i -> Array.to_list (Timed.state g i).Timed.ts_marking)
    (Timed.deadlocks g)
  |> List.sort_uniq compare

let deadlock_markings_explicit x =
  List.map (fun i -> Array.to_list (Tx.state x i).Tx.ts_marking)
    (Tx.deadlocks x)
  |> List.sort_uniq compare

let prop_same_reachable_markings =
  QCheck2.Test.make ~name:"class graph preserves the reachable marking set"
    ~count:120 gen_spec (fun spec ->
      let net = build_net spec in
      match build_both net with
      | None -> true
      | Some (g, x) -> class_markings g = explicit_markings x)

let prop_same_deadlocks =
  QCheck2.Test.make ~name:"class graph preserves the deadlock set" ~count:120
    gen_spec (fun spec ->
      let net = build_net spec in
      match build_both net with
      | None -> true
      | Some (g, x) -> deadlock_markings_class g = deadlock_markings_explicit x)

let prop_same_bounds =
  QCheck2.Test.make ~name:"class graph preserves place bounds" ~count:120
    gen_spec (fun spec ->
      let net = build_net spec in
      match build_both net with
      | None -> true
      | Some (g, x) ->
        List.for_all
          (fun p -> Timed.max_tokens g p = Tx.max_tokens x p)
          (List.init spec.sp_places Fun.id))

let prop_never_larger =
  QCheck2.Test.make ~name:"class graph never exceeds the explicit expansion"
    ~count:120 gen_spec (fun spec ->
      let net = build_net spec in
      match build_both net with
      | None -> true
      | Some (g, x) -> Timed.num_states g <= Tx.num_states x)

let prop_packed_boxed_agree =
  QCheck2.Test.make ~name:"packed and boxed class graphs decode identically"
    ~count:60 gen_spec (fun spec ->
      let net = build_net spec in
      let digest g =
        List.init (Timed.num_states g) (fun i ->
            let s = Timed.state g i in
            ( s.Timed.ts_marking, s.Timed.ts_flight, s.Timed.ts_pending,
              s.Timed.ts_flight_iv, s.Timed.ts_pending_iv, s.Timed.ts_env,
              Timed.successors g i ))
      in
      let boxed = Timed.build ~max_states:3_000 net in
      let packed = Timed.build ~max_states:3_000 ~packed:true net in
      digest boxed = digest packed)

let prop_jobs_byte_identical =
  QCheck2.Test.make
    ~name:"packed class arrays are byte-identical across jobs" ~count:30
    gen_spec (fun spec ->
      let net = build_net spec in
      let serial = Timed.build ~max_states:3_000 ~jobs:1 ~packed:true net in
      List.for_all
        (fun jobs ->
          let sharded =
            Timed.build ~max_states:3_000 ~jobs ~packed:true net
          in
          Timed.packed_arrays serial = Timed.packed_arrays sharded
          && Timed.domain_arrays serial = Timed.domain_arrays sharded)
        [ 2; 4 ])

(* -- the acceptance benchmark: the paper's Figure-5 pipeline with a
      10-cycle memory is where tick interpolation hurts the explicit
      expansion most -- *)

let test_pipeline_reduction () =
  let cfg = { Pnut_pipeline.Config.default with memory_cycles = 10.0 } in
  let net = Pnut_pipeline.Model.full cfg in
  let g = Timed.build ~max_states:100_000 net in
  let x = Tx.build ~max_states:100_000 net in
  Alcotest.(check bool) "both complete" true (Timed.complete g && Tx.complete x);
  Alcotest.(check bool)
    (Printf.sprintf "at least 5x smaller (%d classes vs %d states)"
       (Timed.num_states g) (Tx.num_states x))
    true
    (5 * Timed.num_states g <= Tx.num_states x);
  Alcotest.(check bool) "same reachable markings" true
    (class_markings g = explicit_markings x);
  Alcotest.(check bool) "same deadlock markings" true
    (deadlock_markings_class g = deadlock_markings_explicit x)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "state-class-differential"
    [
      ( "differential",
        [
          q prop_same_reachable_markings;
          q prop_same_deadlocks;
          q prop_same_bounds;
          q prop_never_larger;
        ] );
      ("representations", [ q prop_packed_boxed_agree; q prop_jobs_byte_identical ]);
      ( "pipeline",
        [ Alcotest.test_case "figure-5 reduction" `Quick test_pipeline_reduction ] );
    ]
